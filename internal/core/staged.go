package core

// The staged batch pipeline (DESIGN.md §14). ObserveBatch's fused loops
// used to walk events one at a time: an accumulator probe, sixteen
// dependent hash-table loads, then n counter read-modify-writes, all
// serialized behind a poorly-predictable resident/hash-path branch, with
// every counter access re-loading the Set's epoch/width/mask through the
// pointer receiver. The staged pipeline splits the same work into passes
// over a lookahead window:
//
//  1. Stage (pure): probe accumulator residency and evaluate hashfn.Fused
//     for every event of the window into recycled scratch (slot-or-flag +
//     packed index word per event). Nothing is mutated, so staged results
//     are discardable.
//  2. Commit (ordered): walk the window in event order against a
//     counter.Hot view — resident events apply their deferred exact-count
//     increment via the staged slot, hash-path events do their n counter
//     updates with all Set invariants held in registers.
//
// Staleness is the correctness crux: staged residency is valid only while
// the accumulator's membership is unchanged, and membership changes exactly
// at a successful promotion (an Insert adds the tuple and may evict a
// victim, and its backward-shift delete may move slots). The commit loop
// therefore stops at the first successful Insert and reports how many
// events it consumed; the driver restages the rest of the window. Staging
// is pure, so a restage costs only recomputed probes and hashes — there is
// never anything to roll back. Promotions are bounded per interval by the
// accumulator's own capacity argument (§5.1), so restages are rare and the
// steady state runs whole windows.
//
// Conservative update (C1) is inherently order-sensitive across events
// that share a counter (see TestC1OrderSensitivity and DESIGN.md §14), so
// the C1 commit stays in event order. The plain-update (C0) path is
// additionally eligible for the bank-bucketed two-sweep pipeline in
// banked.go when the counter set outgrows the cache.

import (
	"hwprof/internal/counter"
	"hwprof/internal/event"
	"hwprof/internal/hashfn"
)

const (
	// stagedWindow is the lookahead window length: how far the stage pass
	// runs ahead of the commit cursor. Long enough that the stage pass's
	// independent loads overlap, short enough that a restage after a
	// promotion stays cheap.
	stagedWindow = 64

	// stagedResident flags a staged slot word as "resident, slot in the
	// low bits". Accumulator slot counts are tiny (2×capacity), so the
	// top bit is always free.
	stagedResident = 1 << 31
)

// stagedScratch is the recycled per-profiler scratch of the staged
// pipeline. Everything is sized at construction (and by PrewarmBatch for
// the banked window), so the steady-state pipeline never allocates.
type stagedScratch struct {
	packed []uint64 // stage: fused index word per window event
	slots  []uint32 // stage: accumulator slot | stagedResident, or 0

	// Banked sweep scratch, allocated only when the counter geometry can
	// engage the banked path (see banked.go).
	pairs     []uint32 // scattered flat counter offsets, bank-bucketed
	pairEv    []uint32 // owning window-event index per scattered pair
	pairPre   []uint32 // pre-update counter word per pair, for rollback
	bankStart []int32  // per-bank segment cursors / prefix sums
	mins      []uint32 // per-event post-update minimum (sweep result)
}

// stage fills the scratch with the window's residency probes and fused
// index words. Pure: the accumulator and counters are not touched, so a
// stale window can simply be staged again.
func (m *MultiHash) stage(win []event.Tuple) {
	sc := &m.sc
	packed := sc.packed[:0]
	slots := sc.slots[:0]
	acc, fu := m.acc, m.fused
	for _, tp := range win {
		if s, ok := acc.Probe(tp); ok {
			slots = append(slots, s|stagedResident)
			packed = append(packed, 0)
			continue
		}
		slots = append(slots, 0)
		packed = append(packed, fu.Packed(tp))
	}
	sc.packed, sc.slots = packed, slots
}

// observeStagedConservative drives the staged pipeline for shielded C1
// configurations: stage a window, commit it in event order, restage from
// the first promotion.
func (m *MultiHash) observeStagedConservative(batch []event.Tuple, hot counter.Hot) {
	n := m.fused.Len()
	for lo := 0; lo < len(batch); {
		hi := lo + stagedWindow
		if hi > len(batch) {
			hi = len(batch)
		}
		win := batch[lo:hi]
		m.stage(win)
		if n == 4 {
			lo += m.commitConservative4(win, hot)
		} else {
			lo += m.commitConservativeN(win, hot, n)
		}
	}
}

// observeStagedPlain is the C0 counterpart.
func (m *MultiHash) observeStagedPlain(batch []event.Tuple, hot counter.Hot) {
	n := m.fused.Len()
	for lo := 0; lo < len(batch); {
		hi := lo + stagedWindow
		if hi > len(batch) {
			hi = len(batch)
		}
		win := batch[lo:hi]
		m.stage(win)
		switch n {
		case 4:
			lo += m.commitPlain4(win, hot)
		case 1:
			lo += m.commitPlain1(win, hot)
		default:
			lo += m.commitPlainN(win, hot, n)
		}
	}
}

// commitPlain1 is the single-hash architecture's commit: one counter, no
// minimum to form.
func (m *MultiHash) commitPlain1(win []event.Tuple, hot counter.Hot) int {
	sc := &m.sc
	acc := m.acc
	words, etag, cmask, max := hot.Words, hot.ETag, hot.CMask, hot.Max
	thresh := uint32(m.thresh)
	reset := m.cfg.ResetOnPromote
	packed, slots := sc.packed, sc.slots
	for w, tp := range win {
		s := slots[w]
		if s&stagedResident != 0 {
			acc.IncSlot(s &^ stagedResident)
			continue
		}
		j := packed[w] & hashfn.FusedMask
		var v uint32
		if wd := words[j]; wd&^cmask == etag {
			v = wd & cmask
		}
		if v < max {
			v++
		}
		words[j] = etag | v
		if v < thresh {
			continue
		}
		if acc.Insert(tp, uint64(v)) {
			if reset {
				words[j] = etag
			}
			return w + 1
		}
	}
	return len(win)
}

// commitConservative4 commits a staged window under conservative update
// with the paper's 4-table shape, fully unrolled. It returns the number of
// events consumed: the whole window, or up to and including the first
// successful promotion (after which the staged suffix is stale).
//
// Per hash-path event: four counter loads, a branch-light 4-way minimum,
// and guarded stores to exactly the minimum-valued counters — the same
// dataflow as the ordered reference, minus the redundant re-reads and
// per-call invariant reloads.
func (m *MultiHash) commitConservative4(win []event.Tuple, hot counter.Hot) int {
	sc := &m.sc
	acc := m.acc
	words, etag, cmask, max := hot.Words, hot.ETag, hot.CMask, hot.Max
	size := m.set.Size()
	thresh := uint32(m.thresh)
	reset := m.cfg.ResetOnPromote
	packed, slots := sc.packed, sc.slots
	for w, tp := range win {
		s := slots[w]
		if s&stagedResident != 0 {
			acc.IncSlot(s &^ stagedResident)
			continue
		}
		p := packed[w]
		j0 := int(p & hashfn.FusedMask)
		j1 := size + int((p>>16)&hashfn.FusedMask)
		j2 := 2*size + int((p>>32)&hashfn.FusedMask)
		j3 := 3*size + int(p>>48)
		w0, w1, w2, w3 := words[j0], words[j1], words[j2], words[j3]
		var v0, v1, v2, v3 uint32
		if w0&^cmask == etag {
			v0 = w0 & cmask
		}
		if w1&^cmask == etag {
			v1 = w1 & cmask
		}
		if w2&^cmask == etag {
			v2 = w2 & cmask
		}
		if w3&^cmask == etag {
			v3 = w3 & cmask
		}
		min := v0
		if v1 < min {
			min = v1
		}
		if v2 < min {
			min = v2
		}
		if v3 < min {
			min = v3
		}
		// Every counter at the pre-update minimum advances by one
		// (saturation aside), so the updated minimum is min+1.
		nv := min
		if nv < max {
			nv++
		}
		up := etag | nv
		if v0 == min {
			words[j0] = up
		}
		if v1 == min {
			words[j1] = up
		}
		if v2 == min {
			words[j2] = up
		}
		if v3 == min {
			words[j3] = up
		}
		if nv < thresh {
			continue
		}
		if acc.Insert(tp, uint64(nv)) {
			if reset {
				words[j0] = etag
				words[j1] = etag
				words[j2] = etag
				words[j3] = etag
			}
			return w + 1 // membership changed: staged suffix is stale
		}
	}
	return len(win)
}

// commitConservativeN is commitConservative4 for the other fusable shapes
// (1–3 tables).
func (m *MultiHash) commitConservativeN(win []event.Tuple, hot counter.Hot, n int) int {
	sc := &m.sc
	acc := m.acc
	words, etag, cmask, max := hot.Words, hot.ETag, hot.CMask, hot.Max
	size := m.set.Size()
	thresh := uint32(m.thresh)
	reset := m.cfg.ResetOnPromote
	packed, slots := sc.packed, sc.slots
	var js [4]int
	var vs [4]uint32
	for w, tp := range win {
		s := slots[w]
		if s&stagedResident != 0 {
			acc.IncSlot(s &^ stagedResident)
			continue
		}
		p := packed[w]
		min := ^uint32(0)
		base := 0
		for t := 0; t < n; t++ {
			j := base + int(p&hashfn.FusedMask)
			js[t] = j
			var v uint32
			if wd := words[j]; wd&^cmask == etag {
				v = wd & cmask
			}
			vs[t] = v
			if v < min {
				min = v
			}
			p >>= 16
			base += size
		}
		nv := min
		if nv < max {
			nv++
		}
		up := etag | nv
		for t := 0; t < n; t++ {
			if vs[t] == min {
				words[js[t]] = up
			}
		}
		if nv < thresh {
			continue
		}
		if acc.Insert(tp, uint64(nv)) {
			if reset {
				for t := 0; t < n; t++ {
					words[js[t]] = etag
				}
			}
			return w + 1
		}
	}
	return len(win)
}

// commitPlain4 commits a staged window under plain (C0) update with the
// 4-table shape: every counter increments and the promotion minimum falls
// out of the increment pass.
func (m *MultiHash) commitPlain4(win []event.Tuple, hot counter.Hot) int {
	sc := &m.sc
	acc := m.acc
	words, etag, cmask, max := hot.Words, hot.ETag, hot.CMask, hot.Max
	size := m.set.Size()
	thresh := uint32(m.thresh)
	reset := m.cfg.ResetOnPromote
	packed, slots := sc.packed, sc.slots
	for w, tp := range win {
		s := slots[w]
		if s&stagedResident != 0 {
			acc.IncSlot(s &^ stagedResident)
			continue
		}
		p := packed[w]
		j0 := int(p & hashfn.FusedMask)
		j1 := size + int((p>>16)&hashfn.FusedMask)
		j2 := 2*size + int((p>>32)&hashfn.FusedMask)
		j3 := 3*size + int(p>>48)
		w0, w1, w2, w3 := words[j0], words[j1], words[j2], words[j3]
		var v0, v1, v2, v3 uint32
		if w0&^cmask == etag {
			v0 = w0 & cmask
		}
		if w1&^cmask == etag {
			v1 = w1 & cmask
		}
		if w2&^cmask == etag {
			v2 = w2 & cmask
		}
		if w3&^cmask == etag {
			v3 = w3 & cmask
		}
		if v0 < max {
			v0++
		}
		if v1 < max {
			v1++
		}
		if v2 < max {
			v2++
		}
		if v3 < max {
			v3++
		}
		words[j0] = etag | v0
		words[j1] = etag | v1
		words[j2] = etag | v2
		words[j3] = etag | v3
		min := v0
		if v1 < min {
			min = v1
		}
		if v2 < min {
			min = v2
		}
		if v3 < min {
			min = v3
		}
		if min < thresh {
			continue
		}
		if acc.Insert(tp, uint64(min)) {
			if reset {
				words[j0] = etag
				words[j1] = etag
				words[j2] = etag
				words[j3] = etag
			}
			return w + 1
		}
	}
	return len(win)
}

// commitPlainN is commitPlain4 for the other fusable shapes (1–3 tables);
// with one table it is the single-hash architecture's hot loop.
func (m *MultiHash) commitPlainN(win []event.Tuple, hot counter.Hot, n int) int {
	sc := &m.sc
	acc := m.acc
	words, etag, cmask, max := hot.Words, hot.ETag, hot.CMask, hot.Max
	size := m.set.Size()
	thresh := uint32(m.thresh)
	reset := m.cfg.ResetOnPromote
	packed, slots := sc.packed, sc.slots
	var js [4]int
	for w, tp := range win {
		s := slots[w]
		if s&stagedResident != 0 {
			acc.IncSlot(s &^ stagedResident)
			continue
		}
		p := packed[w]
		min := ^uint32(0)
		base := 0
		for t := 0; t < n; t++ {
			j := base + int(p&hashfn.FusedMask)
			js[t] = j
			var v uint32
			if wd := words[j]; wd&^cmask == etag {
				v = wd & cmask
			}
			if v < max {
				v++
			}
			words[j] = etag | v
			if v < min {
				min = v
			}
			p >>= 16
			base += size
		}
		if min < thresh {
			continue
		}
		if acc.Insert(tp, uint64(min)) {
			if reset {
				for t := 0; t < n; t++ {
					words[js[t]] = etag
				}
			}
			return w + 1
		}
	}
	return len(win)
}
