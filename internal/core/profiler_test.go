package core

import (
	"testing"

	"hwprof/internal/event"
	"hwprof/internal/metrics"
	"hwprof/internal/xrand"
)

// stream builds a deterministic interleaving of hot tuples (each occurring
// hotCount times) and cold noise tuples (each occurring once), shuffled.
func stream(seed uint64, hot int, hotCount int, noise int) []event.Tuple {
	var out []event.Tuple
	for i := 0; i < hot; i++ {
		tp := event.Tuple{A: uint64(i + 1), B: 0xbeef}
		for j := 0; j < hotCount; j++ {
			out = append(out, tp)
		}
	}
	for i := 0; i < noise; i++ {
		out = append(out, event.Tuple{A: 0x1000000 + uint64(i), B: uint64(i)})
	}
	r := xrand.New(seed)
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

func newMH(t *testing.T, cfg Config) *MultiHash {
	t.Helper()
	m, err := NewMultiHash(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMultiHashRejectsInvalid(t *testing.T) {
	if _, err := NewMultiHash(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestSingleHashCapturesCleanHeavyHitter(t *testing.T) {
	cfg := validConfig()
	cfg.NumTables = 1
	m := newMH(t, cfg)
	hot := event.Tuple{A: 42, B: 7}
	// 500 occurrences in a 10,000-event interval, threshold 100.
	in := stream(1, 0, 0, 9500)
	for i := 0; i < 500; i++ {
		in = append(in, hot)
	}
	r := xrand.New(2)
	r.Shuffle(len(in), func(i, j int) { in[i], in[j] = in[j], in[i] })
	for _, tp := range in {
		m.Observe(tp)
	}
	snap := m.EndInterval()
	fh, ok := snap[hot]
	if !ok {
		t.Fatal("heavy hitter not captured")
	}
	// Shielded exact counting after promotion: fh is between 500 (exact)
	// and 500 plus aliasing inflation at promotion time. It must be at
	// least the threshold and at most total events.
	if fh < 100 || fh > 10000 {
		t.Fatalf("captured count %d implausible", fh)
	}
}

func TestColdTuplesNotCaptured(t *testing.T) {
	cfg := validConfig()
	cfg.NumTables = 4
	cfg.ConservativeUpdate = true
	m := newMH(t, cfg)
	for _, tp := range stream(3, 5, 200, 9000) {
		m.Observe(tp)
	}
	snap := m.EndInterval()
	// All five hot tuples captured, no noise tuple above threshold.
	hotFound := 0
	for tp, c := range snap {
		if tp.B == 0xbeef {
			hotFound++
			continue
		}
		if c >= 100 {
			t.Fatalf("noise tuple %v reported with count %d", tp, c)
		}
	}
	if hotFound != 5 {
		t.Fatalf("captured %d of 5 hot tuples", hotFound)
	}
}

func TestShieldingStopsHashUpdates(t *testing.T) {
	cfg := validConfig()
	cfg.NumTables = 1
	m := newMH(t, cfg)
	hot := event.Tuple{A: 1, B: 1}
	for i := 0; i < 100; i++ {
		m.Observe(hot) // promoted at the 100th observation
	}
	idx := m.fam.Indexes(hot, nil)[0]
	after := m.set.Get(0, idx)
	for i := 0; i < 50; i++ {
		m.Observe(hot)
	}
	if got := m.set.Get(0, idx); got != after {
		t.Fatalf("hash counter moved from %d to %d while tuple was shielded", after, got)
	}
	if c, _ := m.acc.Count(hot); c != 150 {
		t.Fatalf("accumulator count = %d, want 150", c)
	}
}

func TestNoShieldKeepsUpdatingHash(t *testing.T) {
	cfg := validConfig()
	cfg.NumTables = 1
	cfg.NoShield = true
	cfg.ResetOnPromote = false
	m := newMH(t, cfg)
	hot := event.Tuple{A: 1, B: 1}
	for i := 0; i < 150; i++ {
		m.Observe(hot)
	}
	idx := m.fam.Indexes(hot, nil)[0]
	if got := m.set.Get(0, idx); got != 150 {
		t.Fatalf("unshielded hash counter = %d, want 150", got)
	}
	if c, _ := m.acc.Count(hot); c != 150 {
		t.Fatalf("accumulator count = %d, want 150", c)
	}
}

func TestResetOnPromoteZeroesCounters(t *testing.T) {
	cfg := validConfig()
	cfg.NumTables = 4
	cfg.ResetOnPromote = true
	m := newMH(t, cfg)
	hot := event.Tuple{A: 5, B: 5}
	for i := 0; i < 100; i++ {
		m.Observe(hot)
	}
	for i, idx := range m.fam.Indexes(hot, nil) {
		if got := m.set.Get(i, idx); got != 0 {
			t.Fatalf("table %d counter = %d after promote with R1", i, got)
		}
	}
}

func TestNoResetLeavesCounters(t *testing.T) {
	cfg := validConfig()
	cfg.NumTables = 1
	cfg.ResetOnPromote = false
	m := newMH(t, cfg)
	hot := event.Tuple{A: 5, B: 5}
	for i := 0; i < 100; i++ {
		m.Observe(hot)
	}
	idx := m.fam.Indexes(hot, nil)[0]
	if got := m.set.Get(0, idx); got != 100 {
		t.Fatalf("R0 counter = %d, want 100", got)
	}
}

func TestEndIntervalFlushesHashTables(t *testing.T) {
	cfg := validConfig()
	m := newMH(t, cfg)
	for _, tp := range stream(7, 3, 150, 5000) {
		m.Observe(tp)
	}
	m.EndInterval()
	for ti := 0; ti < m.set.Tables(); ti++ {
		for i := 0; i < m.set.Size(); i++ {
			if m.set.Get(ti, uint32(i)) != 0 {
				t.Fatalf("table %d entry %d nonzero after EndInterval", ti, i)
			}
		}
	}
	if m.EventsThisInterval() != 0 {
		t.Fatal("event counter not reset")
	}
}

func TestRetainAcrossIntervals(t *testing.T) {
	cfg := validConfig()
	cfg.Retain = true
	cfg.NumTables = 1
	m := newMH(t, cfg)
	hot := event.Tuple{A: 9, B: 9}
	for i := 0; i < 200; i++ {
		m.Observe(hot)
	}
	m.EndInterval()
	// Next interval: the retained entry counts from its first occurrence,
	// with no hash-table warm-up needed.
	for i := 0; i < 150; i++ {
		m.Observe(hot)
	}
	snap := m.EndInterval()
	if got := snap[hot]; got != 150 {
		t.Fatalf("retained tuple second-interval count = %d, want exactly 150", got)
	}
	idx := m.fam.Indexes(hot, nil)[0]
	if got := m.set.Get(0, idx); got != 0 {
		t.Fatalf("retained tuple leaked %d hash increments", got)
	}
}

func TestNoRetainRequiresRewarm(t *testing.T) {
	cfg := validConfig()
	cfg.Retain = false
	cfg.NumTables = 1
	m := newMH(t, cfg)
	hot := event.Tuple{A: 9, B: 9}
	for i := 0; i < 200; i++ {
		m.Observe(hot)
	}
	m.EndInterval()
	for i := 0; i < 150; i++ {
		m.Observe(hot)
	}
	// The count itself is preserved — promotion transfers the hash counter
	// value — but the tuple had to re-warm through the hash table, putting
	// 100 increments of pressure on it (versus 0 when retained). That
	// pressure is what retaining removes (§5.4.1).
	idx := m.fam.Indexes(hot, nil)[0]
	if got := m.set.Get(0, idx); got != 100 {
		t.Fatalf("unretained tuple exerted %d hash increments, want 100", got)
	}
	snap := m.EndInterval()
	if got := snap[hot]; got != 150 {
		t.Fatalf("unretained tuple count = %d, want 150", got)
	}
}

// TestConservativeUpdateOverestimateInvariant checks the count-min-with-
// conservative-update invariant the paper's C1 relies on: with no
// promotion, no reset and no shielding interference, every tuple's minimum
// counter is >= its true count.
func TestConservativeUpdateOverestimateInvariant(t *testing.T) {
	cfg := validConfig()
	cfg.NumTables = 4
	cfg.ConservativeUpdate = true
	cfg.ThresholdPercent = 100 // threshold 10000: nothing promotes
	cfg.AccumCapacity = 1
	m := newMH(t, cfg)

	truth := map[event.Tuple]uint64{}
	r := xrand.New(31)
	for i := 0; i < 10000; i++ {
		tp := event.Tuple{A: r.Uint64n(300), B: r.Uint64n(4)}
		truth[tp]++
		m.Observe(tp)
	}
	for tp, want := range truth {
		min := ^uint64(0)
		for i, idx := range m.fam.Indexes(tp, nil) {
			if v := m.set.Get(i, idx); v < min {
				min = v
			}
		}
		if min < want {
			t.Fatalf("tuple %v min counter %d < true count %d", tp, min, want)
		}
	}
}

// TestConservativeUpdateTightens checks that C1 produces estimates no worse
// than C0 for every tuple (same hash functions, same stream).
func TestConservativeUpdateTightens(t *testing.T) {
	mk := func(cu bool) *MultiHash {
		cfg := validConfig()
		cfg.NumTables = 4
		cfg.ConservativeUpdate = cu
		cfg.ThresholdPercent = 100
		cfg.AccumCapacity = 1
		cfg.Seed = 77
		return newMH(t, cfg)
	}
	c0, c1 := mk(false), mk(true)
	r := xrand.New(13)
	var tuples []event.Tuple
	for i := 0; i < 8000; i++ {
		tp := event.Tuple{A: r.Uint64n(500), B: 1}
		tuples = append(tuples, tp)
		c0.Observe(tp)
		c1.Observe(tp)
	}
	est := func(m *MultiHash, tp event.Tuple) uint64 {
		min := ^uint64(0)
		for i, idx := range m.fam.Indexes(tp, nil) {
			if v := m.set.Get(i, idx); v < min {
				min = v
			}
		}
		return min
	}
	for _, tp := range tuples[:500] {
		if est(c1, tp) > est(c0, tp) {
			t.Fatalf("conservative update worsened estimate for %v: %d > %d",
				tp, est(c1, tp), est(c0, tp))
		}
	}
}

// TestMultiHashReducesFalsePositives is the paper's headline claim in
// miniature: on a noisy stream, 4 hash tables with the same total entry
// budget produce no more false-positive error than 1 table, and strictly
// less when the single table is suffering aliasing.
func TestMultiHashReducesFalsePositives(t *testing.T) {
	run := func(tables int) metrics.Interval {
		cfg := validConfig()
		cfg.TotalEntries = 512 // small table to force aliasing
		cfg.NumTables = tables
		cfg.ConservativeUpdate = tables > 1
		cfg.Retain = true
		cfg.Seed = 5
		m := newMH(t, cfg)
		src := event.NewSliceSource(stream(99, 10, 150, 8500))
		var sum metrics.Summary
		_, err := Run(src, m, cfg.IntervalLength, func(_ int, p, h map[event.Tuple]uint64) {
			sum.Add(metrics.EvalInterval(p, h, cfg.ThresholdCount()))
		})
		if err != nil {
			t.Fatal(err)
		}
		return sum.Mean()
	}
	single := run(1)
	multi := run(4)
	if multi.FalsePos > single.FalsePos {
		t.Fatalf("4-table FP error %v exceeds single-table %v", multi.FalsePos, single.FalsePos)
	}
	if multi.Total > single.Total {
		t.Fatalf("4-table total error %v exceeds single-table %v", multi.Total, single.Total)
	}
}

func TestPerfectProfiler(t *testing.T) {
	p := NewPerfect()
	p.Observe(event.Tuple{A: 1})
	p.Observe(event.Tuple{A: 1})
	p.Observe(event.Tuple{A: 2})
	if p.Distinct() != 2 {
		t.Fatalf("Distinct = %d", p.Distinct())
	}
	snap := p.EndInterval()
	if snap[event.Tuple{A: 1}] != 2 || snap[event.Tuple{A: 2}] != 1 {
		t.Fatalf("snapshot = %v", snap)
	}
	if p.Distinct() != 0 {
		t.Fatal("interval state leaked")
	}
	snap2 := p.EndInterval()
	if len(snap2) != 0 {
		t.Fatal("second snapshot not empty")
	}
}

func TestRunIntervalAccounting(t *testing.T) {
	cfg := validConfig()
	cfg.IntervalLength = 100
	m := newMH(t, cfg)
	// 250 events → 2 full intervals, 50 dropped.
	in := make([]event.Tuple, 250)
	for i := range in {
		in[i] = event.Tuple{A: uint64(i % 10)}
	}
	var seen []int
	n, err := Run(event.NewSliceSource(in), m, cfg.IntervalLength, func(i int, p, h map[event.Tuple]uint64) {
		seen = append(seen, i)
		var total uint64
		for _, c := range p {
			total += c
		}
		if total != 100 {
			t.Fatalf("interval %d has %d perfect events", i, total)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || len(seen) != 2 || seen[0] != 0 || seen[1] != 1 {
		t.Fatalf("intervals = %d, seen = %v", n, seen)
	}
}

func TestRunRejectsZeroInterval(t *testing.T) {
	m := newMH(t, validConfig())
	if _, err := Run(event.NewSliceSource(nil), m, 0, nil); err == nil {
		t.Fatal("zero interval accepted")
	}
}

func TestRunNilCallback(t *testing.T) {
	cfg := validConfig()
	cfg.IntervalLength = 10
	m := newMH(t, cfg)
	in := make([]event.Tuple, 25)
	n, err := Run(event.NewSliceSource(in), m, cfg.IntervalLength, nil)
	if err != nil || n != 2 {
		t.Fatalf("Run = %d, %v", n, err)
	}
}

func TestCandidatesMidInterval(t *testing.T) {
	cfg := validConfig()
	m := newMH(t, cfg)
	hot := event.Tuple{A: 3, B: 3}
	for i := 0; i < 120; i++ {
		m.Observe(hot)
	}
	cands := m.Candidates()
	if len(cands) != 1 || cands[0] != hot {
		t.Fatalf("Candidates = %v", cands)
	}
	if m.AccumLen() != 1 {
		t.Fatalf("AccumLen = %d", m.AccumLen())
	}
}

func TestAccumulatorFullDropsPromotions(t *testing.T) {
	cfg := validConfig()
	cfg.AccumCapacity = 2
	cfg.NumTables = 1
	m := newMH(t, cfg)
	// Three tuples each cross the threshold; only two fit.
	for id := uint64(1); id <= 3; id++ {
		for i := 0; i < 100; i++ {
			m.Observe(event.Tuple{A: id})
		}
	}
	if m.AccumLen() != 2 {
		t.Fatalf("AccumLen = %d, want 2", m.AccumLen())
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	mk := func() map[event.Tuple]uint64 {
		cfg := validConfig()
		cfg.NumTables = 4
		cfg.ConservativeUpdate = true
		m := newMH(t, cfg)
		for _, tp := range stream(123, 8, 140, 8000) {
			m.Observe(tp)
		}
		return m.EndInterval()
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatalf("runs disagree: %d vs %d entries", len(a), len(b))
	}
	for tp, c := range a {
		if b[tp] != c {
			t.Fatalf("runs disagree on %v: %d vs %d", tp, c, b[tp])
		}
	}
}
