package core

// Property tests pinning down which within-batch reorderings preserve the
// profile — the correctness boundary the staged and banked pipelines are
// built around (DESIGN.md §14):
//
//   - Plain update (C0) without promotions is permutation-invariant: the
//     final counter state is a per-counter sum of saturating increments.
//     This is what licenses the banked sweep's bank-by-bank replay.
//   - Conservative update (C1) is order-sensitive even under schedules
//     that preserve per-counter order: an increment is guarded by the
//     event's cross-counter minimum at its logical time, which couples
//     counters the events do not share. This is why C1 stays on the
//     ordered staged pipeline and is excluded from the banked sweep.
//   - Swapping adjacent events with disjoint counter sets preserves the
//     state under either policy (their updates touch disjoint words).

import (
	"testing"

	"hwprof/internal/event"
	"hwprof/internal/hashfn"
	"hwprof/internal/xrand"
)

// counterOffsets returns tp's n flat counter offsets under m's hash family.
func counterOffsets(m *MultiHash, tp event.Tuple) []int {
	p := m.fused.Packed(tp)
	n := m.fused.Len()
	size := m.set.Size()
	out := make([]int, n)
	for t := 0; t < n; t++ {
		out[t] = t*size + int(p&hashfn.FusedMask)
		p >>= 16
	}
	return out
}

// orderTestConfig is a C1-capable shape with an unreachable promotion
// threshold, so the tests observe pure counter dynamics.
func orderTestConfig(c1 bool, bankedMin int) Config {
	return Config{
		IntervalLength:         1 << 20,
		ThresholdPercent:       1, // threshold count ~10486, unreachable here
		TotalEntries:           256,
		NumTables:              4,
		CounterWidth:           16,
		ConservativeUpdate:     c1,
		BankedSweepMinCounters: bankedMin,
		Seed:                   0x0D5E,
	}
}

func mustMultiHash(t *testing.T, cfg Config) *MultiHash {
	t.Helper()
	m, err := NewMultiHash(cfg)
	if err != nil {
		t.Fatalf("NewMultiHash: %v", err)
	}
	return m
}

// counterState snapshots every flat counter.
func counterState(m *MultiHash) []uint64 {
	out := make([]uint64, m.cfg.TotalEntries)
	for j := range out {
		out[j] = m.set.GetAt(j)
	}
	return out
}

// sharedPair searches for two tuples whose counter sets overlap without
// coinciding — the raw material of the C1 counterexample.
func sharedPair(t *testing.T, m *MultiHash) (x, y event.Tuple, shared, xOnly, yOnly []int) {
	r := xrand.New(0x9E3)
	x = event.Tuple{A: r.Uint64(), B: r.Uint64()}
	jx := counterOffsets(m, x)
	inX := make(map[int]bool, len(jx))
	for _, j := range jx {
		inX[j] = true
	}
	for range [1 << 16]struct{}{} {
		y = event.Tuple{A: r.Uint64(), B: r.Uint64()}
		if y == x {
			continue
		}
		jy := counterOffsets(m, y)
		shared, xOnly, yOnly = shared[:0], xOnly[:0], yOnly[:0]
		inY := make(map[int]bool, len(jy))
		for _, j := range jy {
			inY[j] = true
			if inX[j] {
				shared = append(shared, j)
			} else {
				yOnly = append(yOnly, j)
			}
		}
		for _, j := range jx {
			if !inY[j] {
				xOnly = append(xOnly, j)
			}
		}
		if len(shared) > 0 && len(xOnly) > 0 && len(yOnly) > 0 {
			return x, y, shared, xOnly, yOnly
		}
	}
	t.Fatal("no overlapping tuple pair found (hash family degenerate?)")
	return
}

// TestC1OrderSensitivity exhibits the concrete counterexample that proves
// conservative update cannot be reordered, even by schedules that keep
// each individual counter's accesses in order: two events x, y sharing a
// counter s, with y's private counters pre-incremented. In order (x, y),
// x raises s to 1 so y's minimum is 1 and s reaches 2; in order (y, x),
// y's minimum is 0 at s, so s only reaches 1. The per-counter access
// sequence on s is the same length either way — the divergence comes
// purely from the cross-counter min guard.
func TestC1OrderSensitivity(t *testing.T) {
	probe := mustMultiHash(t, orderTestConfig(true, 0))
	x, y, shared, xOnly, yOnly := sharedPair(t, probe)

	run := func(batch []event.Tuple) ([]uint64, *MultiHash) {
		m := mustMultiHash(t, orderTestConfig(true, 0))
		for _, j := range yOnly {
			m.set.IncAt(j)
		}
		m.ObserveBatch(batch)
		return counterState(m), m
	}
	xyState, m := run([]event.Tuple{x, y})
	yxState, _ := run([]event.Tuple{y, x})

	s := shared[0]
	if xyState[s] != 2 {
		t.Errorf("order (x,y): shared counter = %d, want 2", xyState[s])
	}
	if yxState[s] != 1 {
		t.Errorf("order (y,x): shared counter = %d, want 1", yxState[s])
	}

	// The ordered reference must agree with the staged pipeline on both
	// orders — order-sensitivity is a property of C1, not a pipeline bug.
	for name, batch := range map[string][]event.Tuple{"xy": {x, y}, "yx": {y, x}} {
		ref := newRefMultiHash(t, m.cfg)
		for _, j := range yOnly {
			table, idx := j/m.set.Size(), uint32(j%m.set.Size())
			ref.banks[table].inc(idx)
		}
		for _, tp := range batch {
			ref.observe(tp)
		}
		staged := mustMultiHash(t, m.cfg)
		for _, j := range yOnly {
			staged.set.IncAt(j)
		}
		staged.ObserveBatch(batch)
		for j := 0; j < m.cfg.TotalEntries; j++ {
			table, idx := j/m.set.Size(), uint32(j%m.set.Size())
			if got, want := staged.set.GetAt(j), ref.banks[table].get(idx); got != want {
				t.Fatalf("order %s: staged counter %d = %d, reference %d", name, j, got, want)
			}
		}
	}
	_ = xOnly
}

// TestC0PermutationInvariance is the property the banked sweep's replay
// rests on: with plain update and no promotions, every permutation of a
// batch yields the identical counter state. Checked on both the ordered
// staged pipeline and the banked pipeline against a common baseline.
func TestC0PermutationInvariance(t *testing.T) {
	r := xrand.New(0xC0DE)
	batch := make([]event.Tuple, 600)
	hot := make([]event.Tuple, 32)
	for i := range hot {
		hot[i] = event.Tuple{A: r.Uint64(), B: r.Uint64()}
	}
	for i := range batch {
		if r.Uint64n(4) == 0 {
			batch[i] = event.Tuple{A: r.Uint64(), B: r.Uint64()}
		} else {
			batch[i] = hot[r.Uint64n(32)]
		}
	}
	base := mustMultiHash(t, orderTestConfig(false, -1))
	base.ObserveBatch(batch)
	want := counterState(base)

	perm := append([]event.Tuple(nil), batch...)
	for trial := 0; trial < 8; trial++ {
		for i := len(perm) - 1; i > 0; i-- {
			k := int(r.Uint64n(uint64(i + 1)))
			perm[i], perm[k] = perm[k], perm[i]
		}
		for _, bankedMin := range []int{-1, 1} {
			m := mustMultiHash(t, orderTestConfig(false, bankedMin))
			m.ObserveBatch(perm)
			got := counterState(m)
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("trial %d banked=%d: counter %d = %d, want %d",
						trial, bankedMin, j, got[j], want[j])
				}
			}
		}
	}
}

// TestC1DisjointSwapInvariance checks the reordering C1 does tolerate:
// swapping adjacent events whose counter sets are disjoint. Their guarded
// increments read and write disjoint words, so the swap commutes.
func TestC1DisjointSwapInvariance(t *testing.T) {
	probe := mustMultiHash(t, orderTestConfig(true, 0))
	r := xrand.New(0xD15)
	// Build a batch, then find an adjacent disjoint pair to swap.
	batch := make([]event.Tuple, 64)
	for i := range batch {
		batch[i] = event.Tuple{A: r.Uint64(), B: r.Uint64()}
	}
	swapped := append([]event.Tuple(nil), batch...)
	found := false
	for i := 0; i+1 < len(batch); i++ {
		a := counterOffsets(probe, batch[i])
		b := counterOffsets(probe, batch[i+1])
		disjoint := true
		for _, ja := range a {
			for _, jb := range b {
				if ja == jb {
					disjoint = false
				}
			}
		}
		if disjoint {
			swapped[i], swapped[i+1] = swapped[i+1], swapped[i]
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no adjacent disjoint pair in 64 random tuples (hash family degenerate?)")
	}
	a := mustMultiHash(t, orderTestConfig(true, 0))
	b := mustMultiHash(t, orderTestConfig(true, 0))
	a.ObserveBatch(batch)
	b.ObserveBatch(swapped)
	wa, wb := counterState(a), counterState(b)
	for j := range wa {
		if wa[j] != wb[j] {
			t.Fatalf("disjoint swap changed counter %d: %d vs %d", j, wa[j], wb[j])
		}
	}
}
