package core

// The bank-bucketed counter sweep (DESIGN.md §14). When the counter set
// outgrows the cache, the ordered hot loop pays n random, cache-missing
// read-modify-writes per event — the memory-system bottleneck the paper's
// hardware sidesteps with banked counter SRAMs. This path restores the
// banked-memory idiom in software for plain-update (C0) configurations:
//
//  1. Stage (pure): the same residency-probe + fused-index pass as
//     staged.go, over a larger window (bankedWindowMax events).
//  2. Bucket: scatter the hash-path events' flat counter offsets into
//     per-bank segments with a stable counting sort (bank = high bits of
//     the offset, counter.BankShift; one bank's words are L1-sized).
//  3. Optimistic sweep: walk the banks in order, applying each pair's
//     saturating increment directly to the counter words — saving the
//     pair's pre-update word in a side array — and folding each
//     post-update value into its event's running minimum. Because the
//     counting sort is stable and a counter lives in exactly one bank,
//     every counter sees its window hits in event order, so the
//     post-update values — and therefore each event's minimum and
//     promotion decision — are exactly those of the ordered execution,
//     up to the window's first promotion. The sweep touches one
//     cache-resident bank at a time.
//  4. Resolve: if no event's minimum reached the candidate threshold
//     (the common case — promotions are bounded per interval by the
//     accumulator capacity argument, §5.1), the optimistic writes already
//     are the final state; apply the deferred resident increments in
//     event order and the window is done in a single counter pass. If
//     event P is the first to reach it, the optimistic writes ran past P:
//     roll every pair back (walking each bank's segment in reverse, so a
//     counter's first pair — holding its pre-window word — is restored
//     last), replay the increments of events before P bank by bank, apply
//     P itself in order (counter updates, insert, eviction, R1 reset),
//     and hand the suffix back for restaging — promotion changes
//     accumulator membership, which invalidates staged residency.
//
// Conservative update (C1) is excluded by construction: a C1 increment is
// guarded by the event's cross-counter minimum at its logical time, so
// even a per-counter-order-preserving schedule changes the outcome (two
// events sharing one counter suffice — see TestC1OrderSensitivity). C1
// batches stay on the ordered staged pipeline in staged.go.
//
// The banked path is OFF by default. Measured on the benchsuite's deep
// cases (observe-batch/deep vs deep-banked, DESIGN.md §14), the sweep
// loses to the ordered staged loop even at the largest fusable geometry
// with a cold-heavy stream: fused indexes cap the counter set at 4×65536
// = 1 MB of words, which is L2-resident on the machines this runs on, so
// the scatter/gather overhead (12 bytes of pair traffic per counter
// touch plus two extra passes over the window) exceeds the cache-miss
// savings, and an out-of-order core already overlaps the ordered loop's
// four independent counter loads. The sweep is kept as an opt-in
// (Config.BankedSweepMinCounters > 0) for cache-poor targets, and as the
// differential- and property-tested embodiment of the reordering
// analysis the staged pipeline rests on.

import (
	"math"

	"hwprof/internal/counter"
	"hwprof/internal/event"
)

// bankedWindowMax is the banked pipeline's window length in events.
// Larger windows amortize the bucketing passes and lengthen each bank's
// sequential run; the scatter scratch is NumTables words per event.
const bankedWindowMax = 2048

// bankMinWords resolves the BankedSweepMinCounters knob: positive is the
// crossover size, zero or negative disables the banked path.
func (c Config) bankMinWords() int {
	if c.BankedSweepMinCounters > 0 {
		return c.BankedSweepMinCounters
	}
	return math.MaxInt
}

// bankedEligible reports whether this profiler's geometry and policies can
// ever take the banked path, so the scratch is allocated up front and the
// steady state stays allocation-free.
func (m *MultiHash) bankedEligible() bool {
	return m.fused != nil && !m.cfg.NoShield && !m.cfg.ConservativeUpdate &&
		m.cfg.TotalEntries >= m.bankMinWords
}

// growBankedScratch sizes the banked scratch for windows of up to w
// events (and widens the stage scratch to match).
func (m *MultiHash) growBankedScratch(w int) {
	sc := &m.sc
	n := m.fused.Len()
	if cap(sc.packed) < w {
		sc.packed = make([]uint64, 0, w)
		sc.slots = make([]uint32, 0, w)
	}
	if cap(sc.pairs) < n*w {
		sc.pairs = make([]uint32, n*w)
		sc.pairEv = make([]uint32, n*w)
		sc.pairPre = make([]uint32, n*w)
	}
	if len(sc.bankStart) < m.set.NumBanks()+1 {
		sc.bankStart = make([]int32, m.set.NumBanks()+1)
	}
	if len(sc.mins) < w {
		sc.mins = make([]uint32, w)
	}
}

// observeBanked drives C0 batches through the banked windows.
func (m *MultiHash) observeBanked(batch []event.Tuple, hot counter.Hot) {
	m.growBankedScratch(bankedWindowMax) // no-op after construction
	for len(batch) > 0 {
		w := len(batch)
		if w > bankedWindowMax {
			w = bankedWindowMax
		}
		consumed := m.bankedWindow(batch[:w], hot)
		batch = batch[consumed:]
	}
}

// bankedWindow runs one window through phases 1–4 above and returns how
// many events it consumed (the window, or the first promotion + 1).
func (m *MultiHash) bankedWindow(win []event.Tuple, hot counter.Hot) int {
	m.stage(win)
	sc := &m.sc
	n := m.fused.Len()
	size := m.set.Size()
	nb := m.set.NumBanks()
	packed, slots := sc.packed, sc.slots

	// Phase 2: stable counting sort of the hash-path (event, counter)
	// pairs into per-bank segments. Two passes over the staged indexes:
	// histogram, then placement through per-bank cursors.
	counts := sc.bankStart[:nb+1]
	for i := range counts {
		counts[i] = 0
	}
	for w, s := range slots {
		sc.mins[w] = ^uint32(0)
		if s&stagedResident != 0 {
			continue
		}
		p := packed[w]
		base := uint32(0)
		for t := 0; t < n; t++ {
			j := base + uint32(p&0xffff)
			counts[counter.BankOf(j)+1]++
			p >>= 16
			base += uint32(size)
		}
	}
	for b := 1; b <= nb; b++ {
		counts[b] += counts[b-1]
	}
	pairs, pairEv := sc.pairs, sc.pairEv
	cursors := counts // counts[b] is bank b's write cursor during placement
	for w, s := range slots {
		if s&stagedResident != 0 {
			continue
		}
		p := packed[w]
		base := uint32(0)
		for t := 0; t < n; t++ {
			j := base + uint32(p&0xffff)
			b := counter.BankOf(j)
			k := cursors[b]
			pairs[k] = j
			pairEv[k] = uint32(w)
			cursors[b] = k + 1
			p >>= 16
			base += uint32(size)
		}
	}
	// Placement advanced each cursor to its segment's end, which is the
	// next segment's start; shift up one to restore the starts.
	copy(counts[1:nb+1], counts[:nb])
	counts[0] = 0

	// Phase 3: optimistic bank-ordered sweep, writing through.
	m.bankedSweep(hot, nb)

	// First promoter, if any: scanning mins in event order is exact for
	// the promotion-free prefix (see the equivalence argument above).
	thresh := uint32(m.thresh)
	promoter := -1
	for w := range win {
		if slots[w]&stagedResident == 0 && sc.mins[w] >= thresh {
			promoter = w
			break
		}
	}
	cut := len(win)
	if promoter >= 0 {
		// Rare path: undo the optimistic writes past the promoter, then
		// redo the promotion-free prefix.
		m.bankedRollback(hot, nb)
		m.bankedReplay(hot, nb, promoter)
		cut = promoter
	}

	// Deferred resident increments, in event order. Membership is
	// unchanged until the promoter (if any), so the staged slots hold.
	acc := m.acc
	for _, s := range slots[:cut] {
		if s&stagedResident != 0 {
			acc.IncSlot(s &^ stagedResident)
		}
	}

	if promoter < 0 {
		return len(win)
	}

	// Apply the promoting event in order against the replayed prefix
	// state: its counter updates, the promotion insert (with possible
	// eviction), and the R1 reset.
	words, etag, cmask, max := hot.Words, hot.ETag, hot.CMask, hot.Max
	p := packed[promoter]
	min := ^uint32(0)
	var js [4]int
	base := 0
	for t := 0; t < n; t++ {
		j := base + int(p&0xffff)
		js[t] = j
		var v uint32
		if wd := words[j]; wd&^cmask == etag {
			v = wd & cmask
		}
		if v < max {
			v++
		}
		words[j] = etag | v
		if v < min {
			min = v
		}
		p >>= 16
		base += size
	}
	if acc.Insert(win[promoter], uint64(min)) && m.cfg.ResetOnPromote {
		for t := 0; t < n; t++ {
			words[js[t]] = etag
		}
	}
	return promoter + 1
}

// bankedSweep is the optimistic sweep: per pair one read-modify-write on
// the live counter word (bank-local, so in cache), the raw pre-update word
// saved for rollback, the post-update value folded into the event's
// running minimum.
func (m *MultiHash) bankedSweep(hot counter.Hot, nb int) {
	sc := &m.sc
	words, etag, cmask, max := hot.Words, hot.ETag, hot.CMask, hot.Max
	pairs, pairEv, mins := sc.pairs, sc.pairEv, sc.mins
	pre := sc.pairPre
	counts := sc.bankStart
	for b := 0; b < nb; b++ {
		for k := counts[b]; k < counts[b+1]; k++ {
			j := pairs[k]
			wd := words[j]
			pre[k] = wd
			var v uint32
			if wd&^cmask == etag {
				v = wd & cmask
			}
			if v < max {
				v++
			}
			words[j] = etag | v
			if e := pairEv[k]; v < mins[e] {
				mins[e] = v
			}
		}
	}
}

// bankedRollback undoes an optimistic sweep completely. Each bank's
// segment is walked in reverse, so a counter touched several times has
// its first pair's saved word — the pre-window value — written last.
func (m *MultiHash) bankedRollback(hot counter.Hot, nb int) {
	sc := &m.sc
	words := hot.Words
	pairs, pre := sc.pairs, sc.pairPre
	counts := sc.bankStart
	for b := 0; b < nb; b++ {
		for k := counts[b+1] - 1; k >= counts[b]; k-- {
			words[pairs[k]] = pre[k]
		}
	}
}

// bankedReplay applies the increments of events before cut, bank by bank,
// after a rollback. Within a bank the pairs are in event order (stable
// sort) and increments on distinct counters commute, so the replay yields
// exactly the ordered execution's pre-promotion counter state.
func (m *MultiHash) bankedReplay(hot counter.Hot, nb, cut int) {
	sc := &m.sc
	words, etag, cmask, max := hot.Words, hot.ETag, hot.CMask, hot.Max
	pairs, pairEv := sc.pairs, sc.pairEv
	counts := sc.bankStart
	ucut := uint32(cut)
	for b := 0; b < nb; b++ {
		for k := counts[b]; k < counts[b+1]; k++ {
			if pairEv[k] >= ucut {
				continue
			}
			j := pairs[k]
			var v uint32
			if wd := words[j]; wd&^cmask == etag {
				v = wd & cmask
			}
			if v < max {
				v++
			}
			words[j] = etag | v
		}
	}
}
