// Package metrics implements the paper's accuracy methodology (§5.5):
// Figure 3's four-way classification of candidate tuples and the weighted
// per-interval error rate of formula (1).
//
// For a candidate tuple i with perfect frequency fp_i and hardware
// frequency fh_i, the error is |fp_i − fh_i| / fp_i, and the interval error
// is the fp-weighted mean over every tuple that is a candidate in either
// profile — which algebraically is Σ|fp_i − fh_i| / Σfp_i. The net error
// over a run is the simple average of interval errors.
package metrics

import "hwprof/internal/event"

// Category classifies one tuple per Figure 3, given the candidate
// threshold T.
type Category int

// The four error categories of Figure 3 plus the don't-care cell.
const (
	// FalsePositive: hardware says candidate, perfect says not
	// (fp < T, fh >= T). Risks over-aggressive optimization.
	FalsePositive Category = iota
	// FalseNegative: perfect says candidate, hardware missed it
	// (fp >= T, fh < T). A lost optimization opportunity.
	FalseNegative
	// NeutralPositive: both say candidate but hardware over-counts
	// (fh > fp >= T).
	NeutralPositive
	// NeutralNegative: both say candidate but hardware under-counts
	// (fp >= fh >= T; exact counts land here with zero error).
	NeutralNegative
	// DontCare: neither profile considers the tuple a candidate
	// (fp < T, fh < T).
	DontCare
)

// String returns the category's name as used in the paper's figures.
func (c Category) String() string {
	switch c {
	case FalsePositive:
		return "False Positive"
	case FalseNegative:
		return "False Negative"
	case NeutralPositive:
		return "Neutral Positive"
	case NeutralNegative:
		return "Neutral Negative"
	case DontCare:
		return "Don't Care"
	default:
		return "Invalid"
	}
}

// Classify places one tuple's (fp, fh) pair into a Figure 3 cell for
// candidate threshold T.
func Classify(fp, fh, threshold uint64) Category {
	pIn := fp >= threshold
	hIn := fh >= threshold
	switch {
	case pIn && hIn:
		if fh > fp {
			return NeutralPositive
		}
		return NeutralNegative
	case pIn && !hIn:
		return FalseNegative
	case !pIn && hIn:
		return FalsePositive
	default:
		return DontCare
	}
}

// Interval is the error breakdown for one profile interval. The four
// category fields partition Total: Total == FalsePos + FalseNeg +
// NeutralPos + NeutralNeg. All five are fractions (multiply by 100 for the
// paper's % scale) and may exceed 1 when false positives dominate, as in
// the paper's worst configurations.
type Interval struct {
	Total      float64
	FalsePos   float64
	FalseNeg   float64
	NeutralPos float64
	NeutralNeg float64

	// Candidate-tuple counts by category for this interval.
	NumFalsePos   int
	NumFalseNeg   int
	NumNeutralPos int
	NumNeutralNeg int

	// PerfectCandidates is the number of candidates in the perfect
	// profile (Figure 5's quantity).
	PerfectCandidates int
}

// Candidates returns the number of tuples that were candidates in either
// profile.
func (iv Interval) Candidates() int {
	return iv.NumFalsePos + iv.NumFalseNeg + iv.NumNeutralPos + iv.NumNeutralNeg
}

// EvalInterval computes the Figure 3 / formula (1) error breakdown for one
// interval, comparing the hardware profile against the perfect profile at
// the given candidate threshold.
func EvalInterval(perfect, hardware map[event.Tuple]uint64, threshold uint64) Interval {
	var iv Interval
	var denom float64

	consider := func(tp event.Tuple, fp, fh uint64) {
		cat := Classify(fp, fh, threshold)
		if cat == DontCare {
			return
		}
		var diff float64
		if fp > fh {
			diff = float64(fp - fh)
		} else {
			diff = float64(fh - fp)
		}
		denom += float64(fp)
		switch cat {
		case FalsePositive:
			iv.FalsePos += diff
			iv.NumFalsePos++
		case FalseNegative:
			iv.FalseNeg += diff
			iv.NumFalseNeg++
		case NeutralPositive:
			iv.NeutralPos += diff
			iv.NumNeutralPos++
		case NeutralNegative:
			iv.NeutralNeg += diff
			iv.NumNeutralNeg++
		}
		if fp >= threshold {
			iv.PerfectCandidates++
		}
	}

	for tp, fp := range perfect {
		consider(tp, fp, hardware[tp])
	}
	// Hardware-only tuples (perfect count zero would mean the tuple never
	// occurred; with our profilers fh > 0 implies fp > 0, but guard for
	// arbitrary inputs).
	for tp, fh := range hardware {
		if _, seen := perfect[tp]; !seen {
			consider(tp, 0, fh)
		}
	}

	if denom > 0 {
		iv.FalsePos /= denom
		iv.FalseNeg /= denom
		iv.NeutralPos /= denom
		iv.NeutralNeg /= denom
	} else {
		// No perfect occurrences among candidates: any hardware candidate
		// is pure phantom error; report each as 100%.
		n := float64(iv.Candidates())
		iv.FalsePos, iv.FalseNeg, iv.NeutralPos, iv.NeutralNeg = n, 0, 0, 0
	}
	iv.Total = iv.FalsePos + iv.FalseNeg + iv.NeutralPos + iv.NeutralNeg
	return iv
}

// Summary aggregates interval errors over a run.
type Summary struct {
	intervals []Interval
}

// Add appends one interval's error to the summary.
func (s *Summary) Add(iv Interval) { s.intervals = append(s.intervals, iv) }

// Len returns the number of intervals recorded.
func (s *Summary) Len() int { return len(s.intervals) }

// PerInterval returns the recorded intervals in order (the Figure 13
// series). The slice is owned by the Summary; callers must not modify it.
func (s *Summary) PerInterval() []Interval { return s.intervals }

// Mean returns the component-wise simple average over intervals, the
// paper's "final net error rate". A summary with no intervals yields the
// zero Interval.
func (s *Summary) Mean() Interval {
	var m Interval
	if len(s.intervals) == 0 {
		return m
	}
	for _, iv := range s.intervals {
		m.Total += iv.Total
		m.FalsePos += iv.FalsePos
		m.FalseNeg += iv.FalseNeg
		m.NeutralPos += iv.NeutralPos
		m.NeutralNeg += iv.NeutralNeg
		m.NumFalsePos += iv.NumFalsePos
		m.NumFalseNeg += iv.NumFalseNeg
		m.NumNeutralPos += iv.NumNeutralPos
		m.NumNeutralNeg += iv.NumNeutralNeg
		m.PerfectCandidates += iv.PerfectCandidates
	}
	n := float64(len(s.intervals))
	m.Total /= n
	m.FalsePos /= n
	m.FalseNeg /= n
	m.NeutralPos /= n
	m.NeutralNeg /= n
	// Count fields become totals across intervals; they are not averaged
	// because fractional tuple counts are meaningless.
	return m
}
