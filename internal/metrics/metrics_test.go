package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"hwprof/internal/event"
)

func TestClassify(t *testing.T) {
	const T = 100
	cases := []struct {
		fp, fh uint64
		want   Category
	}{
		{150, 150, NeutralNegative}, // exact
		{150, 120, NeutralNegative},
		{150, 200, NeutralPositive},
		{150, 0, FalseNegative},
		{150, 99, FalseNegative},
		{50, 100, FalsePositive},
		{0, 200, FalsePositive},
		{50, 50, DontCare},
		{0, 0, DontCare},
		{99, 99, DontCare},
		{100, 100, NeutralNegative}, // boundary: both exactly at T
		{100, 99, FalseNegative},
		{99, 100, FalsePositive},
	}
	for _, c := range cases {
		if got := Classify(c.fp, c.fh, T); got != c.want {
			t.Errorf("Classify(%d, %d, %d) = %v, want %v", c.fp, c.fh, T, got, c.want)
		}
	}
}

func TestCategoryString(t *testing.T) {
	for c, want := range map[Category]string{
		FalsePositive:   "False Positive",
		FalseNegative:   "False Negative",
		NeutralPositive: "Neutral Positive",
		NeutralNegative: "Neutral Negative",
		DontCare:        "Don't Care",
		Category(42):    "Invalid",
	} {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", c, got, want)
		}
	}
}

func TestEvalIntervalPerfectMatch(t *testing.T) {
	p := map[event.Tuple]uint64{{A: 1}: 500, {A: 2}: 300, {A: 3}: 50}
	h := map[event.Tuple]uint64{{A: 1}: 500, {A: 2}: 300}
	iv := EvalInterval(p, h, 100)
	if iv.Total != 0 {
		t.Fatalf("perfect capture has error %v", iv.Total)
	}
	if iv.NumNeutralNeg != 2 || iv.Candidates() != 2 {
		t.Fatalf("candidate counts wrong: %+v", iv)
	}
	if iv.PerfectCandidates != 2 {
		t.Fatalf("PerfectCandidates = %d, want 2", iv.PerfectCandidates)
	}
}

func TestEvalIntervalFalseNegative(t *testing.T) {
	// One candidate entirely missed: error = fp/fp = 100%.
	p := map[event.Tuple]uint64{{A: 1}: 200}
	h := map[event.Tuple]uint64{}
	iv := EvalInterval(p, h, 100)
	if math.Abs(iv.Total-1) > 1e-12 || math.Abs(iv.FalseNeg-1) > 1e-12 {
		t.Fatalf("Total=%v FalseNeg=%v, want 1, 1", iv.Total, iv.FalseNeg)
	}
	if iv.NumFalseNeg != 1 {
		t.Fatalf("NumFalseNeg = %d", iv.NumFalseNeg)
	}
}

func TestEvalIntervalWeighting(t *testing.T) {
	// Two candidates: fp 400 captured exactly, fp 100 missed.
	// E = (0 + 100) / (400 + 100) = 0.2.
	p := map[event.Tuple]uint64{{A: 1}: 400, {A: 2}: 100}
	h := map[event.Tuple]uint64{{A: 1}: 400}
	iv := EvalInterval(p, h, 100)
	if math.Abs(iv.Total-0.2) > 1e-12 {
		t.Fatalf("Total = %v, want 0.2", iv.Total)
	}
}

func TestEvalIntervalFalsePositiveContribution(t *testing.T) {
	// A real candidate (fp 400, exact) plus a false positive whose true
	// count is 10 but hardware claims 150.
	// E = |10-150| / (400 + 10) = 140/410.
	p := map[event.Tuple]uint64{{A: 1}: 400, {A: 2}: 10}
	h := map[event.Tuple]uint64{{A: 1}: 400, {A: 2}: 150}
	iv := EvalInterval(p, h, 100)
	want := 140.0 / 410.0
	if math.Abs(iv.Total-want) > 1e-12 || math.Abs(iv.FalsePos-want) > 1e-12 {
		t.Fatalf("Total=%v FalsePos=%v, want %v", iv.Total, iv.FalsePos, want)
	}
	if iv.NumFalsePos != 1 {
		t.Fatalf("NumFalsePos = %d", iv.NumFalsePos)
	}
	if iv.PerfectCandidates != 1 {
		t.Fatalf("PerfectCandidates = %d, want 1", iv.PerfectCandidates)
	}
}

func TestEvalIntervalNeutralSplit(t *testing.T) {
	// Over-count and under-count split into the right buckets.
	p := map[event.Tuple]uint64{{A: 1}: 200, {A: 2}: 200}
	h := map[event.Tuple]uint64{{A: 1}: 260, {A: 2}: 150}
	iv := EvalInterval(p, h, 100)
	if math.Abs(iv.NeutralPos-60.0/400) > 1e-12 {
		t.Fatalf("NeutralPos = %v", iv.NeutralPos)
	}
	if math.Abs(iv.NeutralNeg-50.0/400) > 1e-12 {
		t.Fatalf("NeutralNeg = %v", iv.NeutralNeg)
	}
	if iv.NumNeutralPos != 1 || iv.NumNeutralNeg != 1 {
		t.Fatalf("neutral counts: %+v", iv)
	}
}

func TestEvalIntervalEmpty(t *testing.T) {
	iv := EvalInterval(nil, nil, 100)
	if iv.Total != 0 || iv.Candidates() != 0 {
		t.Fatalf("empty profiles gave %+v", iv)
	}
}

func TestEvalIntervalHardwarePhantom(t *testing.T) {
	// Hardware reports a tuple the perfect profiler never saw at all.
	h := map[event.Tuple]uint64{{A: 9}: 500}
	iv := EvalInterval(map[event.Tuple]uint64{}, h, 100)
	if iv.NumFalsePos != 1 {
		t.Fatalf("phantom not classified FP: %+v", iv)
	}
	if iv.Total != 1 {
		t.Fatalf("pure-phantom interval Total = %v, want 1 per phantom", iv.Total)
	}
}

func TestEvalIntervalComponentsSumToTotal(t *testing.T) {
	f := func(fps, fhs []uint16) bool {
		p := map[event.Tuple]uint64{}
		h := map[event.Tuple]uint64{}
		for i, v := range fps {
			p[event.Tuple{A: uint64(i)}] = uint64(v)
		}
		for i, v := range fhs {
			h[event.Tuple{A: uint64(i)}] = uint64(v)
		}
		iv := EvalInterval(p, h, 50)
		sum := iv.FalsePos + iv.FalseNeg + iv.NeutralPos + iv.NeutralNeg
		return math.Abs(sum-iv.Total) < 1e-9 && iv.Total >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryMean(t *testing.T) {
	var s Summary
	s.Add(Interval{Total: 0.2, FalsePos: 0.2, NumFalsePos: 1, PerfectCandidates: 3})
	s.Add(Interval{Total: 0.4, FalseNeg: 0.4, NumFalseNeg: 2, PerfectCandidates: 5})
	m := s.Mean()
	if math.Abs(m.Total-0.3) > 1e-12 {
		t.Fatalf("mean Total = %v", m.Total)
	}
	if math.Abs(m.FalsePos-0.1) > 1e-12 || math.Abs(m.FalseNeg-0.2) > 1e-12 {
		t.Fatalf("mean components: %+v", m)
	}
	if m.NumFalsePos != 1 || m.NumFalseNeg != 2 || m.PerfectCandidates != 8 {
		t.Fatalf("count totals: %+v", m)
	}
	if s.Len() != 2 || len(s.PerInterval()) != 2 {
		t.Fatalf("Len/PerInterval inconsistent")
	}
}

func TestSummaryEmptyMean(t *testing.T) {
	var s Summary
	m := s.Mean()
	if m.Total != 0 {
		t.Fatalf("empty summary mean = %+v", m)
	}
}
