package synth

import (
	"errors"
	"testing"

	"hwprof/internal/core"
	"hwprof/internal/event"
	"hwprof/internal/metrics"
)

func testModel() Model {
	return Model{
		Name: "test", HotTuples: 10, HotSkew: 1.2, HotMass: 0.6,
		WarmTuples: 50, WarmMass: 0.2, NoisePool: 100_000,
		Phases: 2, PhaseDwell: 5000, PhaseOverlap: 0.5,
	}
}

func TestModelValidation(t *testing.T) {
	bad := map[string]func(*Model){
		"no hot tuples": func(m *Model) { m.HotTuples = 0 },
		"negative skew": func(m *Model) { m.HotSkew = -1 },
		"negative warm": func(m *Model) { m.WarmTuples = -1 },
		"mass > 1":      func(m *Model) { m.HotMass = 0.9; m.WarmMass = 0.2 },
		"negative mass": func(m *Model) { m.HotMass = -0.1 },
		"no noise pool": func(m *Model) { m.NoisePool = 0 },
		"no phases":     func(m *Model) { m.Phases = 0 },
		"zero dwell":    func(m *Model) { m.PhaseDwell = 0 },
		"overlap out":   func(m *Model) { m.PhaseOverlap = 1.5 },
	}
	for name, mutate := range bad {
		m := testModel()
		mutate(&m)
		if _, err := NewGenerator(m, 1); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if _, err := NewGenerator(testModel(), 1); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := NewGenerator(testModel(), 42)
	b, _ := NewGenerator(testModel(), 42)
	for i := 0; i < 5000; i++ {
		ta, _ := a.Next()
		tb, _ := b.Next()
		if ta != tb {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, _ := NewGenerator(testModel(), 1)
	b, _ := NewGenerator(testModel(), 2)
	same := 0
	for i := 0; i < 1000; i++ {
		ta, _ := a.Next()
		tb, _ := b.Next()
		if ta == tb {
			same++
		}
	}
	if same > 200 {
		t.Fatalf("different seeds nearly identical: %d/1000 equal", same)
	}
}

func TestHotSetDominates(t *testing.T) {
	g, _ := NewGenerator(testModel(), 7)
	counts := map[event.Tuple]uint64{}
	const n = 50000
	for i := 0; i < n; i++ {
		tp, _ := g.Next()
		counts[tp]++
	}
	// The top tuple must hold several percent of the stream.
	var max uint64
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if float64(max)/n < 0.03 {
		t.Fatalf("hottest tuple holds only %v of stream", float64(max)/n)
	}
	// And there must be plenty of distinct tuples (noise pool working).
	if len(counts) < 5000 {
		t.Fatalf("only %d distinct tuples in %d events", len(counts), n)
	}
}

func TestPhasesChangeHotSet(t *testing.T) {
	m := testModel()
	m.PhaseDwell = 20000
	m.PhaseOverlap = 0
	g, _ := NewGenerator(m, 9)
	top := func() event.Tuple {
		counts := map[event.Tuple]uint64{}
		for i := 0; i < 18000; i++ {
			tp, _ := g.Next()
			counts[tp]++
		}
		var best event.Tuple
		var max uint64
		for tp, c := range counts {
			if c > max {
				best, max = tp, c
			}
		}
		return best
	}
	first := top()
	// Skip to well inside the second phase.
	for i := 0; i < 4000; i++ {
		g.Next()
	}
	second := top()
	if first == second {
		t.Fatal("hot set did not change across a zero-overlap phase boundary")
	}
}

func TestBenchmarksList(t *testing.T) {
	names := Benchmarks()
	want := []string{"burg", "deltablue", "gcc", "go", "li", "m88ksim", "sis", "vortex"}
	if len(names) != len(want) {
		t.Fatalf("Benchmarks() = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Benchmarks()[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}

func TestBenchmarkModelUnknown(t *testing.T) {
	if _, err := BenchmarkModel("nope", event.KindValue); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := NewBenchmark("nope", event.KindValue, 1); err == nil {
		t.Fatal("unknown benchmark accepted by NewBenchmark")
	}
}

func TestAllBenchmarksConstruct(t *testing.T) {
	for _, name := range Benchmarks() {
		for _, kind := range []event.Kind{event.KindValue, event.KindEdge} {
			g, err := NewBenchmark(name, kind, 1)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, kind, err)
			}
			if _, ok := g.Next(); !ok {
				t.Fatalf("%s/%v: stream ended", name, kind)
			}
		}
	}
}

func TestEdgeVariantFewerDistinct(t *testing.T) {
	distinct := func(kind event.Kind) int {
		g, err := NewBenchmark("gcc", kind, 3)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[event.Tuple]bool{}
		for i := 0; i < 100000; i++ {
			tp, _ := g.Next()
			seen[tp] = true
		}
		return len(seen)
	}
	v, e := distinct(event.KindValue), distinct(event.KindEdge)
	if e >= v {
		t.Fatalf("edge stream has %d distinct vs value %d; want fewer", e, v)
	}
}

func TestDomainsDisjoint(t *testing.T) {
	// Hot, warm and noise tuples live in tagged namespaces: run long
	// enough to see all three and verify hot set tuples never appear as
	// noise (tuple equality across domains would corrupt candidate
	// accounting). We approximate by checking that the per-phase hot sets
	// at distinct ranks are distinct tuples.
	g, _ := NewGenerator(testModel(), 11)
	seen := map[event.Tuple]string{}
	for p := range g.hot {
		for _, tp := range g.hot[p] {
			seen[tp] = "hot"
		}
	}
	for p := range g.warm {
		for _, tp := range g.warm[p] {
			if d, ok := seen[tp]; ok && d == "hot" {
				t.Fatalf("tuple %v is both hot and warm", tp)
			}
			seen[tp] = "warm"
		}
	}
}

func TestInterleaveValidation(t *testing.T) {
	g, _ := NewBenchmark("li", event.KindValue, 1)
	if _, err := Interleave(0, g); err == nil {
		t.Fatal("zero quantum accepted")
	}
	if _, err := Interleave(10); err == nil {
		t.Fatal("no sources accepted")
	}
}

func TestInterleaveRoundRobin(t *testing.T) {
	a := event.NewSliceSource([]event.Tuple{{A: 1}, {A: 1}, {A: 1}, {A: 1}})
	b := event.NewSliceSource([]event.Tuple{{A: 2}, {A: 2}, {A: 2}, {A: 2}})
	src, err := Interleave(2, a, b)
	if err != nil {
		t.Fatal(err)
	}
	got := event.Collect(src, 0)
	want := []uint64{1, 1, 2, 2, 1, 1, 2, 2}
	if len(got) != len(want) {
		t.Fatalf("collected %d tuples, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].A != want[i] {
			t.Fatalf("position %d = %d, want %d (%v)", i, got[i].A, want[i], got)
		}
	}
}

func TestInterleaveSkipsExhausted(t *testing.T) {
	a := event.NewSliceSource([]event.Tuple{{A: 1}})
	b := event.NewSliceSource([]event.Tuple{{A: 2}, {A: 2}, {A: 2}})
	src, err := Interleave(2, a, b)
	if err != nil {
		t.Fatal(err)
	}
	got := event.Collect(src, 0)
	if len(got) != 4 {
		t.Fatalf("collected %d tuples, want 4: %v", len(got), got)
	}
}

// TestInterleavedProfiling is the OS-independence demonstration: two
// "processes" context-switch every 1000 events and the profiler, which
// knows nothing about the switches, still catches both programs' hot
// tuples with low error against a perfect profiler of the merged stream.
func TestInterleavedProfiling(t *testing.T) {
	g1, _ := NewBenchmark("li", event.KindValue, 1)
	g2, _ := NewBenchmark("m88ksim", event.KindValue, 2)
	merged, err := Interleave(1000, g1, g2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.BestMultiHash(core.ShortIntervalConfig())
	cfg.Seed = 8
	m, err := core.NewMultiHash(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sum metrics.Summary
	n, err := core.Run(event.Limit(merged, 5*cfg.IntervalLength), m, cfg.IntervalLength,
		func(_ int, p, h map[event.Tuple]uint64) {
			sum.Add(metrics.EvalInterval(p, h, cfg.ThresholdCount()))
		})
	if err != nil || n != 5 {
		t.Fatalf("Run = %d, %v", n, err)
	}
	if mean := sum.Mean().Total; mean > 0.05 {
		t.Fatalf("multiprogrammed error %v, want < 5%%", mean)
	}
}

// failingTestSource delivers its tuples and then fails.
type failingTestSource struct {
	tuples []event.Tuple
	cause  error
	pos    int
}

func (f *failingTestSource) Next() (event.Tuple, bool) {
	if f.pos < len(f.tuples) {
		f.pos++
		return f.tuples[f.pos-1], true
	}
	return event.Tuple{}, false
}

func (f *failingTestSource) Err() error {
	if f.pos >= len(f.tuples) {
		return f.cause
	}
	return nil
}

// TestInterleaveSurfacesSourceError: a sub-stream failure ends the merged
// stream with the failure attributed to the failing source.
func TestInterleaveSurfacesSourceError(t *testing.T) {
	cause := errors.New("trace unplugged")
	bad := &failingTestSource{tuples: []event.Tuple{{A: 1}}, cause: cause}
	good := event.NewSliceSource([]event.Tuple{{A: 2}, {A: 2}, {A: 2}})
	src, err := Interleave(2, bad, good)
	if err != nil {
		t.Fatal(err)
	}
	got := event.Collect(src, 0)
	if len(got) == 0 {
		t.Fatal("nothing delivered before the failure")
	}
	if !errors.Is(src.Err(), cause) {
		t.Fatalf("Err = %v, want the sub-source failure", src.Err())
	}
	if _, ok := src.Next(); ok {
		t.Fatal("merged stream resumed past a failed source")
	}
}
