// Package synth synthesizes profiling-event streams with the statistical
// structure of the paper's benchmark traces.
//
// The paper profiled ATOM-instrumented Alpha binaries of SPEC95/2000 and
// C++ programs. Those traces cannot be regenerated, but every accuracy
// phenomenon the paper measures is a function of the tuple stream's
// statistics, not of the programs themselves:
//
//   - a small hot set of candidate tuples holding most of the dynamic mass
//     (Figure 5: ≤ ~30 tuples cross 1%, ≤ ~200 cross 0.1%),
//   - a warm set of recurring tuples straddling the 0.1% threshold,
//   - a large noise pool of rarely repeating tuples that drives the
//     distinct-tuple counts of Figure 4 and the aliasing pressure,
//   - phase behaviour that changes which tuples are hot (Figure 6).
//
// A Model captures those four knobs; the eight named benchmark analogs
// below are Models tuned so their Figure 4–6 statistics land where the
// paper's benchmarks do (gcc/go noisiest and most phase-varying, li most
// stable, m88ksim/vortex fast-alternating so 10K intervals vary but 1M
// intervals are stable, deltablue slowly phase-shifting so the reverse).
package synth

import (
	"fmt"
	"sort"

	"hwprof/internal/dist"
	"hwprof/internal/event"
	"hwprof/internal/xrand"
)

// Model parameterizes a synthetic workload. The three mass fractions
// (HotMass, WarmMass and the implied noise mass 1−HotMass−WarmMass) split
// dynamic events among the hot set, warm set and noise pool.
type Model struct {
	// Name identifies the workload in reports.
	Name string

	// Kind is the tuple kind the stream claims to be.
	Kind event.Kind

	// HotTuples is the number of hot static tuples per phase; HotSkew is
	// the Zipf exponent over them; HotMass is the fraction of dynamic
	// events drawn from the hot set.
	HotTuples int
	HotSkew   float64
	HotMass   float64

	// WarmTuples recur uniformly and share WarmMass of the dynamic
	// events; tuned per benchmark so they straddle the 0.1% threshold
	// but stay below 1%.
	WarmTuples int
	WarmMass   float64

	// MidTuples recur uniformly with MidMass, parameterized so each sits
	// just *below* the long-regime candidate threshold. They are the
	// aliasing hazard the paper's single-hash architecture suffers from:
	// two mid tuples colliding in one 2K-entry table sum past the
	// threshold (a false positive), while colliding in all four tables of
	// a multi-hash profiler is rare.
	MidTuples int
	MidMass   float64

	// NoisePool is the size of the space rarely repeating tuples are
	// drawn from (uniformly); the remaining event mass goes here.
	NoisePool int

	// Phases, PhaseDwell and PhaseJump drive a dist.PhaseModel that
	// switches the hot and warm sets. PhaseOverlap is the fraction of
	// each phase's hot set shared with every other phase.
	Phases       int
	PhaseDwell   uint64
	PhaseJump    bool
	PhaseOverlap float64
}

// Validate reports whether the model is internally consistent.
func (m Model) Validate() error {
	if m.HotTuples <= 0 {
		return fmt.Errorf("synth: %s: HotTuples %d must be positive", m.Name, m.HotTuples)
	}
	if m.HotSkew < 0 {
		return fmt.Errorf("synth: %s: HotSkew %v must be non-negative", m.Name, m.HotSkew)
	}
	if m.WarmTuples < 0 {
		return fmt.Errorf("synth: %s: WarmTuples %d must be non-negative", m.Name, m.WarmTuples)
	}
	if m.MidTuples < 0 {
		return fmt.Errorf("synth: %s: MidTuples %d must be non-negative", m.Name, m.MidTuples)
	}
	if m.HotMass < 0 || m.WarmMass < 0 || m.MidMass < 0 || m.HotMass+m.WarmMass+m.MidMass > 1 {
		return fmt.Errorf("synth: %s: masses hot=%v warm=%v mid=%v invalid", m.Name, m.HotMass, m.WarmMass, m.MidMass)
	}
	if m.NoisePool <= 0 {
		return fmt.Errorf("synth: %s: NoisePool %d must be positive", m.Name, m.NoisePool)
	}
	if m.Phases <= 0 {
		return fmt.Errorf("synth: %s: Phases %d must be positive", m.Name, m.Phases)
	}
	if m.PhaseDwell == 0 {
		return fmt.Errorf("synth: %s: PhaseDwell must be positive", m.Name)
	}
	if m.PhaseOverlap < 0 || m.PhaseOverlap > 1 {
		return fmt.Errorf("synth: %s: PhaseOverlap %v outside [0,1]", m.Name, m.PhaseOverlap)
	}
	return nil
}

// Generator is an infinite event.Source drawing from a Model.
type Generator struct {
	model Model
	r     *xrand.Rand
	zipf  *dist.Zipf
	phase *dist.PhaseModel

	// hot[p][rank] is the tuple at a given Zipf rank in phase p; shared
	// tuples appear in every phase at phase-permuted ranks.
	hot  [][]event.Tuple
	warm [][]event.Tuple
	mid  [][]event.Tuple

	seed uint64
}

// NewGenerator builds a deterministic generator for the model; equal
// (model, seed) pairs produce identical streams.
func NewGenerator(m Model, seed uint64) (*Generator, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	z, err := dist.NewZipf(m.HotTuples, m.HotSkew)
	if err != nil {
		return nil, fmt.Errorf("synth: %s: %w", m.Name, err)
	}
	ph, err := dist.NewPhaseModel(m.Phases, m.PhaseDwell, m.PhaseJump)
	if err != nil {
		return nil, fmt.Errorf("synth: %s: %w", m.Name, err)
	}
	g := &Generator{
		model: m,
		r:     xrand.New(seed),
		zipf:  z,
		phase: ph,
		seed:  seed,
	}
	g.buildSets()
	return g, nil
}

// tupleID builds a deterministic tuple in a tagged namespace so hot, warm
// and noise tuples can never collide with each other.
func (g *Generator) tupleID(domain uint64, id uint64) event.Tuple {
	base := xrand.Mix64(g.seed ^ domain<<56 ^ id)
	// Shape the halves like <pc, value>: a text-segment-looking PC and a
	// small-ish value, purely cosmetic but it exercises the hash's
	// structured-input path.
	return event.Tuple{
		A: 0x400000 + (base&0xffffff)<<2,
		B: xrand.Mix64(base) & 0xffffffff,
	}
}

const (
	domainSharedHot = 1
	domainPhaseHot  = 2
	domainWarm      = 3
	domainNoise     = 4
	domainMid       = 5
)

// buildSets materializes per-phase hot and warm tuple tables.
func (g *Generator) buildSets() {
	m := g.model
	shared := int(m.PhaseOverlap * float64(m.HotTuples))
	sharedTuples := make([]event.Tuple, shared)
	for i := range sharedTuples {
		sharedTuples[i] = g.tupleID(domainSharedHot, uint64(i))
	}
	g.hot = make([][]event.Tuple, m.Phases)
	g.warm = make([][]event.Tuple, m.Phases)
	g.mid = make([][]event.Tuple, m.Phases)
	for p := 0; p < m.Phases; p++ {
		hot := make([]event.Tuple, 0, m.HotTuples)
		hot = append(hot, sharedTuples...)
		for i := shared; i < m.HotTuples; i++ {
			hot = append(hot, g.tupleID(domainPhaseHot, uint64(p)<<32|uint64(i)))
		}
		// Permute rank→tuple per phase so shared tuples change rank (and
		// hence frequency) across phases; deterministic via seeded RNG.
		pr := xrand.New(g.seed ^ 0x9a7e<<32 ^ uint64(p))
		pr.Shuffle(len(hot), func(i, j int) { hot[i], hot[j] = hot[j], hot[i] })
		g.hot[p] = hot

		// Warm set: half shared across phases, half phase-local, so warm
		// candidates at 0.1% also shift with phases.
		warm := make([]event.Tuple, m.WarmTuples)
		for i := range warm {
			id := uint64(i)
			if i%2 == 1 {
				id = uint64(p)<<32 | uint64(i)
			}
			warm[i] = g.tupleID(domainWarm, id)
		}
		g.warm[p] = warm

		// Mid band: mostly shared (these model stable sub-threshold
		// repeaters like moderately-hot loads).
		mid := make([]event.Tuple, m.MidTuples)
		for i := range mid {
			id := uint64(i)
			if i%4 == 3 {
				id = uint64(p)<<32 | uint64(i)
			}
			mid[i] = g.tupleID(domainMid, id)
		}
		g.mid[p] = mid
	}
}

// Model returns the generator's model.
func (g *Generator) Model() Model { return g.model }

// Next produces the next tuple; the stream never ends.
func (g *Generator) Next() (event.Tuple, bool) {
	p := g.phase.Tick(g.r)
	u := g.r.Float64()
	m := &g.model
	switch {
	case u < m.HotMass:
		rank := g.zipf.Sample(g.r)
		return g.hot[p][rank], true
	case u < m.HotMass+m.WarmMass && m.WarmTuples > 0:
		return g.warm[p][g.r.Intn(m.WarmTuples)], true
	case u < m.HotMass+m.WarmMass+m.MidMass && m.MidTuples > 0:
		return g.mid[p][g.r.Intn(m.MidTuples)], true
	default:
		return g.tupleID(domainNoise, g.r.Uint64n(uint64(m.NoisePool))), true
	}
}

// Err always returns nil: the generator is a pure function of its model
// and seed and cannot fail mid-stream.
func (g *Generator) Err() error { return nil }

var _ event.Source = (*Generator)(nil)

// benchmarks is the analog suite, tuned to the shape targets in DESIGN.md.
var benchmarks = map[string]Model{
	"burg": {
		Name: "burg", HotTuples: 30, HotSkew: 1.3, HotMass: 0.72,
		WarmTuples: 300, WarmMass: 0.10, MidTuples: 60, MidMass: 0.045,
		NoisePool: 500_000,
		Phases:    3, PhaseDwell: 1_500_000, PhaseJump: false, PhaseOverlap: 0.5,
	},
	"deltablue": {
		Name: "deltablue", HotTuples: 25, HotSkew: 1.2, HotMass: 0.70,
		WarmTuples: 200, WarmMass: 0.10, NoisePool: 1_000_000,
		Phases: 6, PhaseDwell: 2_000_000, PhaseJump: false, PhaseOverlap: 0.25,
	},
	"gcc": {
		Name: "gcc", HotTuples: 120, HotSkew: 0.9, HotMass: 0.62,
		WarmTuples: 800, WarmMass: 0.08, MidTuples: 150, MidMass: 0.12,
		NoisePool: 4_000_000,
		Phases:    10, PhaseDwell: 2_000_000, PhaseJump: true, PhaseOverlap: 0.55,
	},
	"go": {
		Name: "go", HotTuples: 100, HotSkew: 0.92, HotMass: 0.58,
		WarmTuples: 800, WarmMass: 0.08, MidTuples: 130, MidMass: 0.10,
		NoisePool: 3_000_000,
		Phases:    8, PhaseDwell: 2_500_000, PhaseJump: true, PhaseOverlap: 0.6,
	},
	"li": {
		Name: "li", HotTuples: 20, HotSkew: 1.4, HotMass: 0.80,
		WarmTuples: 150, WarmMass: 0.10, NoisePool: 200_000,
		Phases: 2, PhaseDwell: 5_000_000, PhaseJump: false, PhaseOverlap: 0.8,
	},
	"m88ksim": {
		Name: "m88ksim", HotTuples: 25, HotSkew: 1.3, HotMass: 0.75,
		WarmTuples: 200, WarmMass: 0.12, NoisePool: 300_000,
		Phases: 4, PhaseDwell: 5_000, PhaseJump: true, PhaseOverlap: 0.5,
	},
	"sis": {
		Name: "sis", HotTuples: 35, HotSkew: 1.15, HotMass: 0.60,
		WarmTuples: 800, WarmMass: 0.14, MidTuples: 80, MidMass: 0.06,
		NoisePool: 1_000_000,
		Phases:    5, PhaseDwell: 800_000, PhaseJump: false, PhaseOverlap: 0.4,
	},
	"vortex": {
		Name: "vortex", HotTuples: 30, HotSkew: 1.25, HotMass: 0.70,
		WarmTuples: 600, WarmMass: 0.09, MidTuples: 100, MidMass: 0.075,
		NoisePool: 800_000,
		Phases:    4, PhaseDwell: 8_000, PhaseJump: true, PhaseOverlap: 0.6,
	},
}

// Benchmarks returns the analog suite's names in the paper's order.
func Benchmarks() []string {
	names := make([]string, 0, len(benchmarks))
	for n := range benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// BenchmarkModel returns the named analog's Model adapted to the tuple
// kind. Edge streams see markedly fewer distinct tuples than value streams
// (paper §6.4.2), so the edge variant shrinks the noise pool and shifts its
// mass into the hot set.
func BenchmarkModel(name string, kind event.Kind) (Model, error) {
	m, ok := benchmarks[name]
	if !ok {
		return Model{}, fmt.Errorf("synth: unknown benchmark %q (have %v)", name, Benchmarks())
	}
	m.Kind = kind
	if kind == event.KindEdge {
		noise := 1 - m.HotMass - m.WarmMass
		m.HotMass += noise / 2
		m.NoisePool = m.NoisePool/8 + 1
		m.WarmTuples = m.WarmTuples/2 + 1
	}
	return m, nil
}

// NewBenchmark builds a generator for a named analog. The same
// (name, kind, seed) triple always produces the same stream.
func NewBenchmark(name string, kind event.Kind, seed uint64) (*Generator, error) {
	m, err := BenchmarkModel(name, kind)
	if err != nil {
		return nil, err
	}
	return NewGenerator(m, seed^xrand.Mix64(uint64(len(name))+uint64(name[0])<<8))
}

// Interleave merges several sources by deterministic round-robin with a
// fixed quantum of events per turn — a multiprogrammed machine as the
// profiler sees it. The paper's selling point is OS independence: the
// hardware profiles whatever stream executes, context switches included,
// with no software involvement. quantum is the context-switch granularity
// in events.
func Interleave(quantum uint64, sources ...event.Source) (event.Source, error) {
	if quantum == 0 {
		return nil, fmt.Errorf("synth: interleave quantum must be positive")
	}
	if len(sources) == 0 {
		return nil, fmt.Errorf("synth: interleave needs at least one source")
	}
	return &interleaved{quantum: quantum, sources: sources}, nil
}

// interleaved is the round-robin merge behind Interleave. A failed source
// ends the merged stream immediately — a multiprogrammed trace with one
// corrupt constituent is corrupt as a whole — and Err surfaces the failure.
type interleaved struct {
	quantum uint64
	sources []event.Source
	cur     int
	used    uint64
	err     error
}

func (s *interleaved) Next() (event.Tuple, bool) {
	if s.err != nil {
		return event.Tuple{}, false
	}
	for tries := 0; tries < len(s.sources); tries++ {
		if s.used >= s.quantum {
			s.cur = (s.cur + 1) % len(s.sources)
			s.used = 0
		}
		tp, ok := s.sources[s.cur].Next()
		if ok {
			s.used++
			return tp, true
		}
		if err := s.sources[s.cur].Err(); err != nil {
			s.err = fmt.Errorf("synth: interleave source %d: %w", s.cur, err)
			return event.Tuple{}, false
		}
		// Source exhausted cleanly: rotate to the next one immediately.
		s.cur = (s.cur + 1) % len(s.sources)
		s.used = 0
	}
	return event.Tuple{}, false
}

// Err returns the failure of the constituent source that ended the merged
// stream, if any.
func (s *interleaved) Err() error { return s.err }
