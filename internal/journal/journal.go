// Package journal makes sessions crash-durable: every accepted session
// mirrors its admitted configuration, each accepted batch in acceptance
// order, every interval boundary it closed (with the emitted profile
// frame — the ack that the client may have seen it), and its clean end
// into a per-session write-ahead journal. After a process kill, the
// daemon replays each journal's unacked suffix through a fresh engine and
// re-parks the session, so a reconnecting client's Resume continues
// bit-identically where the crashed process left off.
//
// # Format
//
// A journal is a directory of segment files reusing the trace layer's v2
// CRC-per-block framing (trace.BlockWriter/ScanBlocks): each segment is a
// 6-byte header — magic "HWPJ", format version, a zero pad — followed by
// CRC-framed blocks, one record per block. Rotated-away segments carry
// the terminator+footer; the active segment does not, and a crash tears
// at most its final frame, which recovery truncates at the last valid
// CRC. Records are:
//
//	meta     session identity: id, publish base, tenant key, the admitted
//	         Hello (config, post-clamp shards, marked) re-encoded with
//	         the wire codec — first record of every segment. A segment
//	         opened after a resize carries the CURRENT geometry, so a
//	         checkpoint entry point always builds the right engine.
//	state    checkpoint at rotation: interval, observed events, shed
//	         count, and the resume ring length (ring entries follow as
//	         ring records)
//	ring     one retained encoded profile frame (follows state)
//	batch    cumulative shed count + the events, wire batch codec
//	boundary interval index, cumulative shed, and the encoded profile
//	         frame written to the client for it
//	resize   an elastic geometry change committed at the preceding
//	         boundary: the session's new Hello. Replay rebuilds a fresh
//	         engine from it — a resize IS a fresh-engine restart point by
//	         construction, for every policy combination, because the old
//	         engine (retained candidates included) is discarded outright.
//	end      clean end: the client got its final profile and goodbye;
//	         there is nothing to recover
//
// # Replay soundness and truncation
//
// Replaying a suffix of the batch history through a fresh engine is only
// bit-identical if the suffix starts where engine state is empty. With
// Retain off, every interval boundary is such a point: the accumulator is
// cleared wholesale and the counters flush, so the engine after boundary
// k equals a fresh engine (insertion sequence numbers differ in absolute
// value but only their relative order — identical within any interval —
// is ever compared). With Retain on, above-threshold entries survive
// boundaries with their ages, so only the full history from the session's
// first batch replays bit-identically. Segment rotation therefore
// truncates acked prefixes — deletes segments before the checkpoint —
// only for Retain-off sessions; Retain sessions rotate (bounding segment
// size) but keep their history until the session ends cleanly, when the
// whole journal is removed.
//
// # Sync policy
//
// SyncNone buffers records in process memory: fastest, but a crash loses
// the buffered tail and a client that already pruned past it cannot
// resume. SyncInterval makes every boundary record — and with it every
// record before it — durable (flush + fsync) before the profile frame is
// written to the client: a completed interval the client saw is always
// recoverable, and mid-interval batches lost to a crash are still in the
// client's replay buffer, so recovery stays bit-identical for blocking
// sessions. SyncBatch additionally fsyncs every batch record: nothing
// accepted is ever lost, at one fsync per batch. Rotation barriers
// (checkpoint before any deletion) are fsynced under every policy.
package journal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"hwprof/internal/event"
	"hwprof/internal/trace"
	"hwprof/internal/wire"
)

// Magic identifies a hwprof session-journal segment.
const Magic = "HWPJ"

// Version is the journal format version. v2 added the tenant key to the
// meta record and the resize record; v1 journals are refused (recovery
// across a daemon upgrade is not a supported path — drain before
// upgrading).
const Version = 2

// DefaultSegmentBytes is the rotation threshold for journal segments.
const DefaultSegmentBytes = 8 << 20

// batchChunk bounds events per batch record so every record fits the
// block layer's payload limit (worst-case varint encoding ≈ 20 B/event).
const batchChunk = 1024

// ErrCorrupt reports a journal whose surviving bytes are inconsistent —
// framing intact but records that contradict each other or the session
// they claim to describe.
var ErrCorrupt = errors.New("journal: corrupt journal")

// Record types.
const (
	recMeta = iota + 1
	recState
	recRing
	recBatch
	recBoundary
	recEnd
	recResize
)

// SyncPolicy selects the journal's durability barrier.
type SyncPolicy int

const (
	// SyncNone issues no explicit flush or fsync outside rotation and
	// clean close; a crash loses the buffered tail.
	SyncNone SyncPolicy = iota
	// SyncInterval flushes and fsyncs at every interval boundary, before
	// the profile frame reaches the client.
	SyncInterval
	// SyncBatch flushes and fsyncs every record.
	SyncBatch
)

// ParseSync parses the -journal-sync flag value.
func ParseSync(s string) (SyncPolicy, error) {
	switch s {
	case "none":
		return SyncNone, nil
	case "interval":
		return SyncInterval, nil
	case "batch":
		return SyncBatch, nil
	}
	return 0, fmt.Errorf("journal: unknown sync policy %q (want none, interval or batch)", s)
}

// String names the policy the way the flag spells it.
func (p SyncPolicy) String() string {
	switch p {
	case SyncInterval:
		return "interval"
	case SyncBatch:
		return "batch"
	default:
		return "none"
	}
}

// File is the journal's requirement of a segment file. *os.File satisfies
// it; tests substitute fault injectors.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// Options configures a journal directory.
type Options struct {
	// Dir is the journal root; each session owns a subdirectory.
	Dir string

	// Sync is the durability barrier policy.
	Sync SyncPolicy

	// SegmentBytes rotates the active segment once it grows past this
	// size (at the next boundary); 0 selects DefaultSegmentBytes.
	SegmentBytes int64

	// Open creates a fresh segment file at path; nil selects os.OpenFile
	// with O_CREATE|O_EXCL. Tests inject failing files here.
	Open func(path string) (File, error)

	// OnAppend, if non-nil, observes every record append with its framed
	// size in bytes.
	OnAppend func(bytes int64)

	// OnSync, if non-nil, observes every fsync issued.
	OnSync func()
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.Open == nil {
		o.Open = func(path string) (File, error) {
			return os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		}
	}
	return o
}

// Meta is the session identity a journal records: enough to rebuild the
// admitted session — engine and feed membership — from nothing.
type Meta struct {
	// SessionID is the daemon-assigned session id; the recovered session
	// keeps it so the client's Resume finds it.
	SessionID uint64

	// Hello is the admitted session shape: config, post-clamp shard
	// count, marked flag — exactly what the engine was built from. After
	// a resize it tracks the CURRENT geometry (Writer.Resize updates it),
	// so checkpoint segments always describe the engine they continue.
	Hello wire.Hello

	// Pub reports that the session publishes into the epoch feed;
	// PubBase is the fleet epoch its interval 0 maps to. Recovery rejoins
	// the feed at PubBase so replayed intervals re-pin the same epochs.
	Pub     bool
	PubBase uint64

	// Tenant is the admission tenant key (the client's host), so recovery
	// can re-account the session against the right per-tenant cost quota.
	Tenant string
}

// restartable reports whether interval boundaries are fresh-engine
// restart points, making acked-prefix truncation sound (see the package
// comment).
func (m Meta) restartable() bool { return !m.Hello.Config.Retain }

// State is a stream position: completed intervals, events observed into
// engines, and events shed. Ring carries the retained encoded profile
// frames at a checkpoint (oldest first); replay callbacks deliver
// post-checkpoint profiles separately.
type State struct {
	Interval uint64
	Observed uint64
	Shed     uint64
	Ring     [][]byte
}

// StreamPos is the client-stream position: observed plus shed.
func (s State) StreamPos() uint64 { return s.Observed + s.Shed }

// Stats summarizes what recovery had to repair.
type Stats struct {
	// Segments is the number of segment files read.
	Segments int
	// TornSegments counts segments whose tail was truncated at the last
	// valid CRC (a torn final write, or trailing corruption).
	TornSegments int
	// TornBytes is the total bytes discarded by those truncations.
	TornBytes int64
	// DroppedSegments counts unreadable later segments removed after a
	// mid-journal truncation.
	DroppedSegments int
}

// Handler receives a journal's records during replay, in the exact order
// the session accepted them.
type Handler interface {
	// Start delivers the session identity and the checkpoint state replay
	// begins from — the zero State for a journal with its full history.
	Start(meta Meta, state State) error
	// Batch delivers one accepted batch. The slice is reused; the handler
	// must consume it before returning.
	Batch(events []event.Tuple) error
	// Boundary delivers one closed interval: its index, the cumulative
	// shed count at the close, and the encoded profile frame the client
	// was sent for it. The frame slice is the handler's to keep.
	Boundary(index, shed uint64, profile []byte) error
	// Resize delivers an elastic geometry change committed at the
	// preceding boundary: the handler must discard its engine and build a
	// fresh one from h, exactly as the live session did.
	Resize(h wire.Hello) error
}

// sessionDir names a session's journal directory.
func sessionDir(root string, id uint64) string {
	return filepath.Join(root, fmt.Sprintf("session-%d", id))
}

// segPath names a segment file.
func segPath(dir string, idx int) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%08d.wal", idx))
}

// Remove deletes a session's journal.
func Remove(root string, id uint64) error {
	return os.RemoveAll(sessionDir(root, id))
}

// ScanDir lists the session ids with journals under root, sorted.
func ScanDir(root string) ([]uint64, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("journal: scanning %s: %w", root, err)
	}
	var ids []uint64
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		rest, ok := strings.CutPrefix(e.Name(), "session-")
		if !ok {
			continue
		}
		id, err := strconv.ParseUint(rest, 10, 64)
		if err != nil {
			continue
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// Writer appends one session's records. All methods are safe for the
// worker goroutine against a concurrent Abandon (crash simulation) or
// Close from a teardown path.
type Writer struct {
	mu   sync.Mutex
	opts Options
	meta Meta
	dir  string

	f        File
	bufw     *bufio.Writer
	bw       *trace.BlockWriter
	seg      int
	segBytes int64

	interval uint64
	observed uint64
	shed     uint64

	buf    []byte
	dead   bool
	closed bool
}

// Create opens a fresh journal for a session, replacing any leftover
// directory with the same id, and makes the meta record durable.
func Create(opts Options, meta Meta) (*Writer, error) {
	opts = opts.withDefaults()
	dir := sessionDir(opts.Dir, meta.SessionID)
	if err := os.RemoveAll(dir); err != nil {
		return nil, fmt.Errorf("journal: clearing %s: %w", dir, err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: creating %s: %w", dir, err)
	}
	w := &Writer{opts: opts, meta: meta, dir: dir}
	if err := w.openSegment(1, nil, false); err != nil {
		return nil, err
	}
	return w, nil
}

// openSegment starts segment idx with its header and meta record — plus,
// for a rotation checkpoint, the state and ring records — and makes them
// durable. Callers hold the lock (or own the writer exclusively).
func (w *Writer) openSegment(idx int, ring [][]byte, checkpoint bool) error {
	f, err := w.opts.Open(segPath(w.dir, idx))
	if err != nil {
		return fmt.Errorf("journal: creating segment %d: %w", idx, err)
	}
	w.f = f
	w.bufw = bufio.NewWriterSize(f, 1<<16)
	w.bw = trace.NewBlockWriter(w.bufw)
	w.seg = idx
	w.segBytes = 0
	if _, err := w.bufw.WriteString(Magic); err != nil {
		return fmt.Errorf("journal: segment header: %w", err)
	}
	if err := w.bufw.WriteByte(Version); err != nil {
		return fmt.Errorf("journal: segment header: %w", err)
	}
	if err := w.bufw.WriteByte(0); err != nil {
		return fmt.Errorf("journal: segment header: %w", err)
	}
	if err := w.append(encodeMeta(w.buf[:0], w.meta)); err != nil {
		return err
	}
	if checkpoint {
		if err := w.append(encodeState(w.buf[:0], State{Interval: w.interval, Observed: w.observed, Shed: w.shed}, len(ring))); err != nil {
			return err
		}
		for _, p := range ring {
			w.buf = append(append(w.buf[:0], recRing), p...)
			if err := w.append(w.buf); err != nil {
				return err
			}
		}
	}
	// The segment's identity — and a checkpoint that later truncation
	// depends on — is fsynced under every policy; segment starts are rare.
	return w.flushSync()
}

// append writes one record as a block and accounts its size.
func (w *Writer) append(payload []byte) error {
	w.buf = payload // keep ownership for reuse
	if err := w.bw.Append(payload); err != nil {
		return err
	}
	n := trace.FrameLen(len(payload))
	w.segBytes += n
	if w.opts.OnAppend != nil {
		w.opts.OnAppend(n)
	}
	return nil
}

// flushSync pushes buffered records to the OS and through it to the
// device.
func (w *Writer) flushSync() error {
	if err := w.bufw.Flush(); err != nil {
		return fmt.Errorf("journal: flush: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	if w.opts.OnSync != nil {
		w.opts.OnSync()
	}
	return nil
}

// Batch journals one accepted batch (chunked to fit the block layer)
// with the cumulative shed count at acceptance.
func (w *Writer) Batch(events []event.Tuple, shed uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dead {
		return nil
	}
	if w.closed {
		return errors.New("journal: batch after close")
	}
	for len(events) > 0 {
		n := len(events)
		if n > batchChunk {
			n = batchChunk
		}
		w.buf = append(w.buf[:0], recBatch)
		w.buf = binary.AppendUvarint(w.buf, shed)
		w.buf = wire.AppendBatch(w.buf, events[:n])
		if err := w.append(w.buf); err != nil {
			return err
		}
		w.observed += uint64(n)
		events = events[n:]
	}
	w.shed = shed
	if w.opts.Sync == SyncBatch {
		return w.flushSync()
	}
	return nil
}

// Boundary journals one closed interval — index, cumulative shed, and
// the encoded profile frame — making it durable under SyncInterval and
// SyncBatch before returning, so the caller may only then show the
// profile to the client. ring is the session's retained resend ring
// after this profile (used only if the segment rotates here).
func (w *Writer) Boundary(index, shed uint64, profile []byte, ring [][]byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dead {
		return nil
	}
	if w.closed {
		return errors.New("journal: boundary after close")
	}
	if index != w.interval {
		return fmt.Errorf("journal: boundary %d out of order, journal at %d", index, w.interval)
	}
	w.buf = append(w.buf[:0], recBoundary)
	w.buf = binary.AppendUvarint(w.buf, index)
	w.buf = binary.AppendUvarint(w.buf, shed)
	w.buf = append(w.buf, profile...)
	if err := w.append(w.buf); err != nil {
		return err
	}
	w.interval = index + 1
	w.shed = shed
	if w.opts.Sync != SyncNone {
		if err := w.flushSync(); err != nil {
			return err
		}
	}
	if w.segBytes >= w.opts.SegmentBytes {
		return w.rotate(ring)
	}
	return nil
}

// Resize journals an elastic geometry change committed at the current
// boundary and makes it durable under every sync policy (resizes are rare
// and recovery must never rebuild the wrong engine shape), then adopts h
// as the session's meta Hello so later checkpoint segments describe the
// engine they continue. Call it only at an interval boundary, after that
// boundary's record.
func (w *Writer) Resize(h wire.Hello) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dead {
		return nil
	}
	if w.closed {
		return errors.New("journal: resize after close")
	}
	w.buf = append(w.buf[:0], recResize)
	w.buf = wire.AppendHello(w.buf, h, 2)
	if err := w.append(w.buf); err != nil {
		return err
	}
	w.meta.Hello = h
	return w.flushSync()
}

// rotate finishes the active segment and starts the next with a
// checkpoint. The checkpoint is durable before the old segment's footer
// lands and before any prefix is deleted, so a crash at any point leaves
// either the full old chain or a complete new entry point. Prefix
// truncation — deleting the pre-checkpoint segments — happens only for
// restartable (Retain-off) sessions.
func (w *Writer) rotate(ring [][]byte) error {
	if err := w.bw.Finish(); err != nil {
		return fmt.Errorf("journal: finishing segment %d: %w", w.seg, err)
	}
	if err := w.flushSync(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("journal: closing segment %d: %w", w.seg, err)
	}
	prev := w.seg
	if err := w.openSegment(prev+1, ring, true); err != nil {
		return err
	}
	if w.meta.restartable() {
		// Delete ascending: a crash mid-loop must leave a contiguous
		// suffix (checkpoint verification would reject a gapped journal).
		for i := 1; i <= prev; i++ {
			if err := os.Remove(segPath(w.dir, i)); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("journal: truncating acked prefix: %w", err)
			}
		}
	}
	return nil
}

// End journals the session's clean end and closes the journal; recovery
// treats the session as fully acked.
func (w *Writer) End() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dead || w.closed {
		return nil
	}
	w.closed = true
	if err := w.append([]byte{recEnd}); err != nil {
		return err
	}
	if err := w.bw.Finish(); err != nil {
		return err
	}
	if err := w.flushSync(); err != nil {
		return err
	}
	return w.f.Close()
}

// Close flushes and closes the journal without ending it: the segment
// stays footer-less and appendable, and recovery will replay it — the
// graceful-shutdown path for parked sessions that should survive a
// restart.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dead || w.closed {
		return nil
	}
	w.closed = true
	if err := w.flushSync(); err != nil {
		return err
	}
	return w.f.Close()
}

// Abandon drops the journal as a crash would: buffered records are
// discarded, nothing is flushed, the file handle is closed. For crash
// simulation in tests; safe against concurrent appends.
func (w *Writer) Abandon() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dead || w.closed {
		return
	}
	w.dead = true
	w.f.Close()
}

// State returns the journal's stream position.
func (w *Writer) State() State {
	w.mu.Lock()
	defer w.mu.Unlock()
	return State{Interval: w.interval, Observed: w.observed, Shed: w.shed}
}

// encodeMeta builds a meta record. The tenant key rides length-prefixed
// before the Hello because the wire Hello decoder consumes the payload
// remainder exactly.
func encodeMeta(dst []byte, m Meta) []byte {
	dst = append(dst, recMeta)
	dst = binary.AppendUvarint(dst, m.SessionID)
	var flags byte
	if m.Pub {
		flags |= 1
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, m.PubBase)
	dst = binary.AppendUvarint(dst, uint64(len(m.Tenant)))
	dst = append(dst, m.Tenant...)
	return wire.AppendHello(dst, m.Hello, 2)
}

// encodeState builds a state record (ring entries follow separately).
func encodeState(dst []byte, st State, nring int) []byte {
	dst = append(dst, recState)
	dst = binary.AppendUvarint(dst, st.Interval)
	dst = binary.AppendUvarint(dst, st.Observed)
	dst = binary.AppendUvarint(dst, st.Shed)
	return binary.AppendUvarint(dst, uint64(nring))
}

// cursor decodes record payloads with a sticky error.
type cursor struct {
	p   []byte
	off int
	err error
}

func (c *cursor) uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.p[c.off:])
	if n <= 0 {
		c.err = fmt.Errorf("%w: short record", ErrCorrupt)
		return 0
	}
	c.off += n
	return v
}

func (c *cursor) byte() byte {
	if c.err != nil {
		return 0
	}
	if c.off >= len(c.p) {
		c.err = fmt.Errorf("%w: short record", ErrCorrupt)
		return 0
	}
	b := c.p[c.off]
	c.off++
	return b
}

func (c *cursor) rest() []byte {
	if c.err != nil {
		return nil
	}
	return c.p[c.off:]
}

func decodeMeta(p []byte) (Meta, error) {
	c := cursor{p: p}
	var m Meta
	m.SessionID = c.uvarint()
	m.Pub = c.byte()&1 != 0
	m.PubBase = c.uvarint()
	tn := c.uvarint()
	if c.err != nil {
		return Meta{}, c.err
	}
	if tn > uint64(len(c.rest())) {
		return Meta{}, fmt.Errorf("%w: meta tenant length %d overruns record", ErrCorrupt, tn)
	}
	m.Tenant = string(c.rest()[:tn])
	c.off += int(tn)
	h, err := wire.DecodeHello(c.rest(), 2)
	if err != nil {
		return Meta{}, fmt.Errorf("%w: meta hello: %w", ErrCorrupt, err)
	}
	m.Hello = h
	return m, nil
}

// replayer carries the per-session replay state across segments.
type replayer struct {
	h       Handler
	meta    Meta
	metaOK  bool
	started bool
	cur      State
	ringN    int  // ring records still expected after a state record
	ringSkip bool // the pending ring records are a mid-replay checkpoint's
	init     State
	clean    bool
	batch    []event.Tuple
}

func (r *replayer) ensureStarted() error {
	if r.started {
		return nil
	}
	if !r.metaOK {
		return fmt.Errorf("%w: records before meta", ErrCorrupt)
	}
	r.started = true
	r.cur = State{Interval: r.init.Interval, Observed: r.init.Observed, Shed: r.init.Shed}
	return r.h.Start(r.meta, r.init)
}

func (r *replayer) record(p []byte) error {
	if r.clean {
		return nil // nothing follows a clean end
	}
	if len(p) == 0 {
		return fmt.Errorf("%w: empty record", ErrCorrupt)
	}
	typ, body := p[0], p[1:]
	if r.ringN > 0 {
		if typ != recRing {
			return fmt.Errorf("%w: expected %d more ring record(s), got type %d", ErrCorrupt, r.ringN, typ)
		}
		if !r.ringSkip {
			r.init.Ring = append(r.init.Ring, append([]byte(nil), body...))
		}
		r.ringN--
		return nil
	}
	switch typ {
	case recMeta:
		m, err := decodeMeta(body)
		if err != nil {
			return err
		}
		if r.metaOK {
			if m.SessionID != r.meta.SessionID {
				return fmt.Errorf("%w: segment meta names session %d, journal is session %d", ErrCorrupt, m.SessionID, r.meta.SessionID)
			}
			return nil
		}
		r.meta, r.metaOK = m, true
	case recState:
		c := cursor{p: body}
		st := State{Interval: c.uvarint(), Observed: c.uvarint(), Shed: c.uvarint()}
		nring := int(c.uvarint())
		if c.err != nil {
			return c.err
		}
		if !r.started {
			// Checkpoint entry point: replay begins here. Sound only
			// because rotation happens at boundaries and checkpointed
			// prefixes are deleted only for restartable sessions.
			r.init = st
			r.ringN, r.ringSkip = nring, false
			return nil
		}
		// A mid-replay checkpoint (history retained): verify, don't reset.
		if st.Interval != r.cur.Interval || st.Observed != r.cur.Observed || st.Shed != r.cur.Shed {
			return fmt.Errorf("%w: checkpoint %+v disagrees with replayed position %+v", ErrCorrupt, st, r.cur)
		}
		r.ringN, r.ringSkip = nring, true
		return nil
	case recRing:
		// Ring records outside a pending state are mid-replay checkpoint
		// leftovers; ignore.
		return nil
	case recBatch:
		if err := r.ensureStarted(); err != nil {
			return err
		}
		c := cursor{p: body}
		shed := c.uvarint()
		if c.err != nil {
			return c.err
		}
		events, err := wire.DecodeBatch(c.rest(), r.batch[:0])
		if err != nil {
			return fmt.Errorf("%w: batch record: %w", ErrCorrupt, err)
		}
		r.batch = events
		if err := r.h.Batch(events); err != nil {
			return err
		}
		r.cur.Observed += uint64(len(events))
		r.cur.Shed = shed
	case recBoundary:
		if err := r.ensureStarted(); err != nil {
			return err
		}
		c := cursor{p: body}
		index, shed := c.uvarint(), c.uvarint()
		if c.err != nil {
			return c.err
		}
		if index != r.cur.Interval {
			return fmt.Errorf("%w: boundary %d out of order, replay at %d", ErrCorrupt, index, r.cur.Interval)
		}
		if err := r.h.Boundary(index, shed, append([]byte(nil), c.rest()...)); err != nil {
			return err
		}
		r.cur.Interval = index + 1
		r.cur.Shed = shed
	case recResize:
		if err := r.ensureStarted(); err != nil {
			return err
		}
		h, err := wire.DecodeHello(body, 2)
		if err != nil {
			return fmt.Errorf("%w: resize record: %w", ErrCorrupt, err)
		}
		// Track the current geometry so the writer returned by Recover
		// checkpoints the engine it actually continues.
		r.meta.Hello = h
		if err := r.h.Resize(h); err != nil {
			return err
		}
	case recEnd:
		r.clean = true
	default:
		return fmt.Errorf("%w: unknown record type %d", ErrCorrupt, typ)
	}
	return nil
}

// segIndexes lists a session dir's segment files, sorted by index.
func segIndexes(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: reading %s: %w", dir, err)
	}
	var idxs []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".wal") {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".wal"))
		if err != nil {
			continue
		}
		idxs = append(idxs, n)
	}
	sort.Ints(idxs)
	return idxs, nil
}

// readHeader validates a segment header.
func readHeader(f io.Reader) error {
	var hdr [6]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return fmt.Errorf("%w: segment header: %w", trace.ErrTruncated, err)
	}
	if string(hdr[:4]) != Magic {
		return fmt.Errorf("%w: bad segment magic", ErrCorrupt)
	}
	if hdr[4] != Version {
		return fmt.Errorf("journal: unsupported segment version %d", hdr[4])
	}
	return nil
}

// Recover replays one session's journal through h and returns a Writer
// positioned to continue appending, the replayed stream position, and
// repair statistics. A torn or trailing-corrupt tail is truncated at the
// last valid CRC (counted in Stats); later segments past a truncation are
// dropped. If the journal records a clean end, the returned Writer is nil
// and the handler's Start is never called — there is nothing to recover.
func Recover(opts Options, id uint64, h Handler) (*Writer, State, Stats, error) {
	opts = opts.withDefaults()
	dir := sessionDir(opts.Dir, id)
	var stats Stats
	idxs, err := segIndexes(dir)
	if err != nil {
		return nil, State{}, stats, err
	}
	if len(idxs) == 0 {
		return nil, State{}, stats, fmt.Errorf("journal: session %d has no segments", id)
	}

	// An ended session's end record is always in the last segment (End
	// finishes the active segment and nothing follows). Pre-scan it so a
	// cleanly ended session never invokes the handler — the caller would
	// otherwise build an engine just to throw it away.
	if f, err := os.Open(segPath(dir, idxs[len(idxs)-1])); err == nil {
		ended := false
		if readHeader(f) == nil {
			_, _ = trace.ScanBlocks(f, func(p []byte) error {
				if len(p) > 0 && p[0] == recEnd {
					ended = true
				}
				return nil
			})
		}
		f.Close()
		if ended {
			return nil, State{}, stats, nil
		}
	}

	r := &replayer{h: h}
	type segEnd struct {
		idx    int
		valid  int64 // body bytes after the header
		blocks uint64
		crc    uint32
		clean  bool
	}
	var last segEnd
	for i, idx := range idxs {
		f, err := os.Open(segPath(dir, idx))
		if err != nil {
			return nil, State{}, stats, fmt.Errorf("journal: opening segment %d: %w", idx, err)
		}
		stats.Segments++
		hdrErr := readHeader(f)
		if hdrErr != nil {
			f.Close()
			// A header-less or mis-headed segment can only be the torn
			// first write of a rotation; it carries nothing.
			if i == len(idxs)-1 && errors.Is(hdrErr, trace.ErrTruncated) {
				stats.TornSegments++
				if err := os.Remove(segPath(dir, idx)); err != nil {
					return nil, State{}, stats, fmt.Errorf("journal: dropping empty segment %d: %w", idx, err)
				}
				break
			}
			return nil, State{}, stats, fmt.Errorf("journal: segment %d: %w", idx, hdrErr)
		}
		res, err := trace.ScanBlocks(f, r.record)
		f.Close()
		if err != nil {
			return nil, State{}, stats, fmt.Errorf("journal: segment %d: %w", idx, err)
		}
		last = segEnd{idx: idx, valid: res.Valid, blocks: res.Blocks, crc: res.CRC, clean: res.Clean}
		if !res.Clean {
			// An unfinished segment is the active one — expected after any
			// crash or graceful close; only actually discarded bytes (a torn
			// final write, or trailing corruption) count as a truncation.
			// A torn earlier segment means its rotated successors describe
			// state we can no longer reach, so they are dropped too.
			if fi, statErr := os.Stat(segPath(dir, idx)); statErr == nil && fi.Size() > 6+res.Valid {
				stats.TornBytes += fi.Size() - (6 + res.Valid)
				stats.TornSegments++
			}
			if err := os.Truncate(segPath(dir, idx), 6+res.Valid); err != nil {
				return nil, State{}, stats, fmt.Errorf("journal: truncating segment %d: %w", idx, err)
			}
			for _, lateIdx := range idxs[i+1:] {
				if err := os.Remove(segPath(dir, lateIdx)); err != nil {
					return nil, State{}, stats, fmt.Errorf("journal: dropping segment %d: %w", lateIdx, err)
				}
				stats.DroppedSegments++
			}
			break
		}
	}
	if r.clean {
		return nil, r.cur, stats, nil
	}
	if !r.started {
		// A journal holding only meta (and perhaps a checkpoint): still a
		// recoverable session at its recorded position.
		if err := r.ensureStarted(); err != nil {
			return nil, State{}, stats, err
		}
	}

	// Reopen the surviving tail segment for append. If everything after
	// the header was torn away, or the survivor was a finished (rotated)
	// segment, re-enter it by truncating its footer — ScanBlocks' Valid
	// excludes the terminator and footer, so truncation at Valid always
	// leaves an appendable body.
	if last.idx == 0 {
		return nil, State{}, stats, fmt.Errorf("journal: session %d has no usable segments", id)
	}
	path := segPath(dir, last.idx)
	if err := os.Truncate(path, 6+last.valid); err != nil {
		return nil, State{}, stats, fmt.Errorf("journal: reopening segment %d: %w", last.idx, err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return nil, State{}, stats, fmt.Errorf("journal: reopening segment %d: %w", last.idx, err)
	}
	w := &Writer{
		opts:     opts,
		meta:     r.meta,
		dir:      dir,
		f:        f,
		bufw:     bufio.NewWriterSize(f, 1<<16),
		seg:      last.idx,
		segBytes: last.valid,
		interval: r.cur.Interval,
		observed: r.cur.Observed,
		shed:     r.cur.Shed,
	}
	w.bw = trace.ResumeBlockWriter(w.bufw, last.blocks, last.crc)
	fin := r.cur
	fin.Ring = nil
	return w, fin, stats, nil
}

// Replay reads one session's journal through h without modifying anything
// on disk: no truncation, no reopen-for-append, no segment removal. A torn
// or trailing-corrupt tail simply ends the replay at the last valid record
// — exactly the prefix Recover would have preserved — with the damage
// counted in Stats. Unlike Recover, a cleanly ended journal still replays
// in full: Replay serves readers (export, inspection), not crash recovery.
func Replay(opts Options, id uint64, h Handler) (State, Stats, error) {
	opts = opts.withDefaults()
	dir := sessionDir(opts.Dir, id)
	var stats Stats
	idxs, err := segIndexes(dir)
	if err != nil {
		return State{}, stats, err
	}
	if len(idxs) == 0 {
		return State{}, stats, fmt.Errorf("journal: session %d has no segments", id)
	}
	r := &replayer{h: h}
	for i, idx := range idxs {
		f, err := os.Open(segPath(dir, idx))
		if err != nil {
			return State{}, stats, fmt.Errorf("journal: opening segment %d: %w", idx, err)
		}
		stats.Segments++
		if hdrErr := readHeader(f); hdrErr != nil {
			f.Close()
			// The torn first write of a rotation carries nothing; a
			// mis-headed earlier segment is real damage.
			if i == len(idxs)-1 && errors.Is(hdrErr, trace.ErrTruncated) {
				stats.TornSegments++
				break
			}
			return State{}, stats, fmt.Errorf("journal: segment %d: %w", idx, hdrErr)
		}
		res, err := trace.ScanBlocks(f, r.record)
		f.Close()
		if err != nil {
			return State{}, stats, fmt.Errorf("journal: segment %d: %w", idx, err)
		}
		if !res.Clean {
			if fi, statErr := os.Stat(segPath(dir, idx)); statErr == nil && fi.Size() > 6+res.Valid {
				stats.TornBytes += fi.Size() - (6 + res.Valid)
				stats.TornSegments++
			}
			// Rotated successors of a torn segment describe unreachable
			// state; report how many the replay ignored.
			stats.DroppedSegments += len(idxs) - i - 1
			break
		}
	}
	if !r.started {
		// A journal holding only meta (and perhaps a checkpoint) still
		// identifies the session at its recorded position.
		if err := r.ensureStarted(); err != nil {
			return State{}, stats, err
		}
	}
	fin := r.cur
	fin.Ring = nil
	return fin, stats, nil
}
