package journal

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"hwprof/internal/core"
	"hwprof/internal/event"
	"hwprof/internal/faultinject"
	"hwprof/internal/wire"
)

func testMeta(id uint64, retain bool) Meta {
	return Meta{
		SessionID: id,
		Hello: wire.Hello{
			Config: core.Config{
				IntervalLength:     1000,
				ThresholdPercent:   0.5,
				TotalEntries:       256,
				NumTables:          2,
				CounterWidth:       24,
				ConservativeUpdate: true,
				Retain:             retain,
				Seed:               42,
			},
			Shards: 2,
			Marked: retain,
		},
		Pub:     true,
		PubBase: 7,
	}
}

// recording implements Handler by collecting everything replayed.
type recording struct {
	meta       Meta
	init       State
	started    bool
	batches    [][]event.Tuple
	boundaries []struct {
		Index, Shed uint64
		Profile     []byte
	}
	resizes []wire.Hello
}

func (r *recording) Start(meta Meta, state State) error {
	r.meta, r.init, r.started = meta, state, true
	return nil
}

func (r *recording) Batch(events []event.Tuple) error {
	r.batches = append(r.batches, append([]event.Tuple(nil), events...))
	return nil
}

func (r *recording) Boundary(index, shed uint64, profile []byte) error {
	r.boundaries = append(r.boundaries, struct {
		Index, Shed uint64
		Profile     []byte
	}{index, shed, profile})
	return nil
}

func (r *recording) Resize(h wire.Hello) error {
	r.resizes = append(r.resizes, h)
	return nil
}

func (r *recording) events() []event.Tuple {
	var all []event.Tuple
	for _, b := range r.batches {
		all = append(all, b...)
	}
	return all
}

func testEvents(rng *rand.Rand, n int) []event.Tuple {
	evs := make([]event.Tuple, n)
	for i := range evs {
		evs[i] = event.Tuple{A: rng.Uint64() % 512, B: rng.Uint64() % 8}
	}
	return evs
}

// writeSession journals nint intervals of nev events each, starting at
// interval index start, and returns the events and profiles written.
func writeSession(t *testing.T, w *Writer, rng *rand.Rand, start, nint, nev int) ([]event.Tuple, [][]byte) {
	t.Helper()
	var all []event.Tuple
	var profiles [][]byte
	var ring [][]byte
	for i := start; i < start+nint; i++ {
		evs := testEvents(rng, nev)
		half := nev / 2
		if err := w.Batch(evs[:half], 0); err != nil {
			t.Fatalf("batch: %v", err)
		}
		if err := w.Batch(evs[half:], 0); err != nil {
			t.Fatalf("batch: %v", err)
		}
		all = append(all, evs...)
		prof := wire.AppendProfile(nil, wire.ProfileMsg{
			Index:  uint64(i),
			Counts: map[event.Tuple]uint64{{A: uint64(i), B: 1}: uint64(nev)},
		})
		profiles = append(profiles, prof)
		ring = append(ring, prof)
		if len(ring) > 4 {
			ring = ring[1:]
		}
		if err := w.Boundary(uint64(i), 0, prof, ring); err != nil {
			t.Fatalf("boundary %d: %v", i, err)
		}
	}
	return all, profiles
}

// equalEvents compares event streams treating nil and empty as equal.
func equalEvents(a, b []event.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSyncPolicyParse(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{{"none", SyncNone}, {"interval", SyncInterval}, {"batch", SyncBatch}} {
		got, err := ParseSync(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseSync(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("String() = %q, want %q", got.String(), tc.in)
		}
	}
	if _, err := ParseSync("always"); err == nil {
		t.Fatal("ParseSync accepted junk")
	}
}

// TestJournalRoundTrip writes a session, closes the journal as a graceful
// shutdown would, and recovers it: meta, batches and boundaries must come
// back verbatim, in order, with the stream position intact.
func TestJournalRoundTrip(t *testing.T) {
	for _, sync := range []SyncPolicy{SyncNone, SyncInterval, SyncBatch} {
		t.Run(sync.String(), func(t *testing.T) {
			opts := Options{Dir: t.TempDir(), Sync: sync}
			meta := testMeta(3, false)
			w, err := Create(opts, meta)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1))
			all, profiles := writeSession(t, w, rng, 0, 5, 40)
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}

			ids, err := ScanDir(opts.Dir)
			if err != nil || !reflect.DeepEqual(ids, []uint64{3}) {
				t.Fatalf("ScanDir = %v, %v", ids, err)
			}

			var rec recording
			w2, st, stats, err := Recover(opts, 3, &rec)
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			if w2 == nil {
				t.Fatal("recover returned nil writer for an unended session")
			}
			defer w2.Abandon()
			if stats.TornSegments != 0 {
				t.Fatalf("clean close recovered with stats %+v", stats)
			}
			if !reflect.DeepEqual(rec.meta, meta) {
				t.Fatalf("meta round-trip:\n got %+v\nwant %+v", rec.meta, meta)
			}
			if got := rec.events(); !reflect.DeepEqual(got, all) {
				t.Fatalf("replayed %d events, want %d (first diff hunting skipped)", len(got), len(all))
			}
			if len(rec.boundaries) != 5 {
				t.Fatalf("replayed %d boundaries, want 5", len(rec.boundaries))
			}
			for i, b := range rec.boundaries {
				if b.Index != uint64(i) || !reflect.DeepEqual(b.Profile, profiles[i]) {
					t.Fatalf("boundary %d mismatch", i)
				}
			}
			want := State{Interval: 5, Observed: uint64(len(all))}
			if st.Interval != want.Interval || st.Observed != want.Observed || st.Shed != 0 {
				t.Fatalf("state = %+v, want %+v", st, want)
			}

			// The recovered writer must continue the stream: append another
			// interval and recover again.
			more, _ := writeSession(t, w2, rng, 5, 1, 20)
			if err := w2.Close(); err != nil {
				t.Fatal(err)
			}
			var rec2 recording
			w3, st2, _, err := Recover(opts, 3, &rec2)
			if err != nil {
				t.Fatalf("second recover: %v", err)
			}
			w3.Abandon()
			if got := rec2.events(); !reflect.DeepEqual(got, append(append([]event.Tuple(nil), all...), more...)) {
				t.Fatalf("second replay saw %d events, want %d", len(got), len(all)+len(more))
			}
			if st2.Interval != 6 {
				t.Fatalf("second replay interval = %d, want 6", st2.Interval)
			}
		})
	}
}

// TestJournalCleanEnd proves an ended session recovers as nothing to do.
func TestJournalCleanEnd(t *testing.T) {
	opts := Options{Dir: t.TempDir(), Sync: SyncInterval}
	w, err := Create(opts, testMeta(9, false))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	writeSession(t, w, rng, 0, 2, 30)
	if err := w.End(); err != nil {
		t.Fatal(err)
	}
	var rec recording
	w2, _, _, err := Recover(opts, 9, &rec)
	if err != nil {
		t.Fatalf("recover of ended session: %v", err)
	}
	if w2 != nil {
		t.Fatal("ended session recovered a live writer")
	}
	if rec.started {
		t.Fatal("ended session replayed records")
	}
}

// TestJournalTornTail cuts the active segment at every byte offset in its
// tail region: recovery must truncate at the last valid CRC, replay the
// surviving prefix, and hand back a writer that continues it.
func TestJournalTornTail(t *testing.T) {
	opts := Options{Dir: t.TempDir(), Sync: SyncBatch}
	meta := testMeta(5, false)
	w, err := Create(opts, meta)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	writeSession(t, w, rng, 0, 3, 24)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(opts.Dir, "session-5", "seg-00000001.wal")
	pristine, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}

	// Cut the final ~200 bytes one offset at a time (every offset would be
	// slow with an engine in the loop later; the block layer's own test
	// already covers every offset exhaustively).
	start := len(pristine) - 200
	if start < 7 {
		start = 7
	}
	for cut := start; cut < len(pristine); cut++ {
		if err := os.WriteFile(seg, pristine[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var rec recording
		w2, st, stats, err := Recover(opts, 5, &rec)
		if err != nil {
			t.Fatalf("cut %d: recover: %v", cut, err)
		}
		if !rec.started || !reflect.DeepEqual(rec.meta, meta) {
			t.Fatalf("cut %d: replay lost the meta record", cut)
		}
		if st.Observed != uint64(len(rec.events())) {
			t.Fatalf("cut %d: state observed %d, replayed %d", cut, st.Observed, len(rec.events()))
		}
		// A cut mid-record must be truncated and counted.
		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() > int64(cut) {
			t.Fatalf("cut %d: recovery grew the file to %d", cut, fi.Size())
		}
		// A cut at a frame boundary discards nothing; any other cut is a
		// counted truncation.
		wantTorn := 0
		if fi.Size() < int64(cut) {
			wantTorn = 1
		}
		if stats.TornSegments != wantTorn {
			t.Fatalf("cut %d: stats = %+v, want %d torn segment(s)", cut, stats, wantTorn)
		}
		// The recovered writer continues the stream bit-consistently.
		evs := testEvents(rng, 8)
		if err := w2.Batch(evs, 0); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		if err := w2.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
		var rec2 recording
		w3, st2, _, err := Recover(opts, 5, &rec2)
		if err != nil {
			t.Fatalf("cut %d: recover after append: %v", cut, err)
		}
		w3.Abandon()
		if st2.Observed != st.Observed+8 {
			t.Fatalf("cut %d: appended events lost: %d -> %d", cut, st.Observed, st2.Observed)
		}
		wantTail := rec2.events()[len(rec2.events())-8:]
		if !reflect.DeepEqual(wantTail, evs) {
			t.Fatalf("cut %d: appended batch did not round-trip", cut)
		}
	}
}

// TestJournalTornWriter drives the journal through a faultinject.TornWriter
// so the tear happens inside the writer's own flush path, not by editing
// files afterwards.
func TestJournalTornWriter(t *testing.T) {
	dir := t.TempDir()
	var torn *faultinject.TornWriter
	opts := Options{
		Dir:  dir,
		Sync: SyncBatch,
		Open: func(path string) (File, error) {
			f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
			if err != nil {
				return nil, err
			}
			torn = &faultinject.TornWriter{W: f, After: 901}
			return struct {
				*faultinject.TornWriter
				syncCloser
			}{torn, syncCloser{f}}, nil
		},
	}
	w, err := Create(opts, testMeta(11, false))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	writeSession(t, w, rng, 0, 10, 40)
	if !torn.Torn() {
		t.Fatal("tear point never crossed; raise the write volume")
	}
	w.Abandon()

	var rec recording
	w2, st, stats, err := Recover(opts2(dir), 11, &rec)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	w2.Abandon()
	if stats.TornSegments != 1 {
		t.Fatalf("stats = %+v, want one torn segment", stats)
	}
	if !rec.started || st.Observed != uint64(len(rec.events())) {
		t.Fatalf("replay inconsistent: state %+v, %d events", st, len(rec.events()))
	}
	if st.Observed == 0 {
		t.Fatal("nothing survived a 900-byte prefix")
	}
}

// syncCloser supplies Sync/Close for a torn-writer composite.
type syncCloser struct{ f *os.File }

func (s syncCloser) Sync() error  { return s.f.Sync() }
func (s syncCloser) Close() error { return s.f.Close() }

func opts2(dir string) Options { return Options{Dir: dir, Sync: SyncBatch} }

// TestJournalFsyncFailure proves a failing fsync surfaces as an error from
// the durability barrier — the session must die typed, not limp on.
func TestJournalFsyncFailure(t *testing.T) {
	opts := Options{
		Dir:  t.TempDir(),
		Sync: SyncBatch,
		Open: func(path string) (File, error) {
			f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
			if err != nil {
				return nil, err
			}
			return &faultinject.FailingFile{F: f, After: 3}, nil
		},
	}
	w, err := Create(opts, testMeta(13, false))
	if err != nil {
		t.Fatal(err) // creation fsync is call 1
	}
	if err := w.Batch(testEvents(rand.New(rand.NewSource(5)), 10), 0); err != nil {
		t.Fatal(err) // call 2
	}
	err = w.Batch(testEvents(rand.New(rand.NewSource(6)), 10), 0) // call 3 fails
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("batch after fsync failure: %v, want ErrInjected", err)
	}
	w.Abandon()
}

// TestJournalRotation exercises segment rotation under both truncation
// regimes: a restartable (Retain-off) session keeps only the checkpointed
// suffix, a Retain session keeps its full history — and both recover to
// the same stream position.
func TestJournalRotation(t *testing.T) {
	for _, retain := range []bool{false, true} {
		t.Run(fmt.Sprintf("retain=%v", retain), func(t *testing.T) {
			opts := Options{Dir: t.TempDir(), Sync: SyncInterval, SegmentBytes: 2048}
			meta := testMeta(21, retain)
			w, err := Create(opts, meta)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(7))
			all, profiles := writeSession(t, w, rng, 0, 24, 60)
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}

			segs, err := segIndexes(filepath.Join(opts.Dir, "session-21"))
			if err != nil {
				t.Fatal(err)
			}
			if retain {
				// Full history: every segment from 1 on survives.
				if len(segs) < 2 || segs[0] != 1 {
					t.Fatalf("retain journal truncated its history: segments %v", segs)
				}
			} else {
				// Acked prefix truncated: only the checkpointed suffix
				// (usually a single segment) remains, and it is not seg 1.
				if segs[0] == 1 || segs[len(segs)-1] < 2 {
					t.Fatalf("restartable journal kept its acked prefix: segments %v", segs)
				}
			}

			var rec recording
			w2, st, _, err := Recover(opts, 21, &rec)
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			w2.Abandon()
			if st.Interval != 24 || st.Observed != uint64(len(all)) {
				t.Fatalf("recovered state %+v, want interval 24, observed %d", st, len(all))
			}
			if retain {
				// Full history replays.
				if !equalEvents(rec.events(), all) {
					t.Fatalf("retain journal replayed %d events, want %d", len(rec.events()), len(all))
				}
				if rec.init.Interval != 0 || len(rec.init.Ring) != 0 {
					t.Fatalf("retain journal started from checkpoint %+v", rec.init)
				}
			} else {
				// Replay starts at the last checkpoint: the events replayed
				// must be exactly the tail of the stream after it.
				skip := int(rec.init.Observed)
				if !equalEvents(rec.events(), all[skip:]) {
					t.Fatalf("checkpoint replay mismatch: init %+v, %d events", rec.init, len(rec.events()))
				}
				// The checkpoint ring carries the profiles before the entry
				// point, ending at the checkpoint interval.
				if len(rec.init.Ring) == 0 {
					t.Fatal("checkpoint carried no resume ring")
				}
				wantRing := profiles[int(rec.init.Interval)-len(rec.init.Ring) : rec.init.Interval]
				if !reflect.DeepEqual(rec.init.Ring, wantRing) {
					t.Fatalf("checkpoint ring mismatch at interval %d", rec.init.Interval)
				}
			}
		})
	}
}

// TestJournalAbandon proves Abandon models a crash: buffered unflushed
// records are lost, previously synced ones survive.
func TestJournalAbandon(t *testing.T) {
	opts := Options{Dir: t.TempDir(), Sync: SyncInterval}
	w, err := Create(opts, testMeta(31, false))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	// Two full intervals (synced at their boundaries), then a dangling
	// batch that only reaches the bufio buffer.
	all, _ := writeSession(t, w, rng, 0, 2, 30)
	if err := w.Batch(testEvents(rng, 10), 0); err != nil {
		t.Fatal(err)
	}
	w.Abandon()

	// Writer is dead: every further call is a silent no-op.
	if err := w.Batch(testEvents(rng, 5), 0); err != nil {
		t.Fatalf("append on abandoned journal: %v", err)
	}

	var rec recording
	w2, st, _, err := Recover(opts, 31, &rec)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	w2.Abandon()
	if st.Interval != 2 || st.Observed != uint64(len(all)) {
		t.Fatalf("recovered %+v, want the two synced intervals (%d events)", st, len(all))
	}
}

// TestJournalMetrics checks the byte and fsync hooks fire.
func TestJournalMetrics(t *testing.T) {
	var bytes int64
	var syncs int
	opts := Options{
		Dir:      t.TempDir(),
		Sync:     SyncBatch,
		OnAppend: func(n int64) { bytes += n },
		OnSync:   func() { syncs++ },
	}
	w, err := Create(opts, testMeta(41, false))
	if err != nil {
		t.Fatal(err)
	}
	writeSession(t, w, rand.New(rand.NewSource(9)), 0, 2, 20)
	if err := w.End(); err != nil {
		t.Fatal(err)
	}
	// Creation, 2×2 batches, 2 boundaries, end: 8 fsyncs.
	if syncs != 8 {
		t.Fatalf("fsyncs = %d, want 8", syncs)
	}
	if bytes == 0 {
		t.Fatal("no bytes accounted")
	}
	dir := filepath.Join(opts.Dir, "session-41")
	segs, _ := segIndexes(dir)
	var onDisk int64
	for _, idx := range segs {
		fi, err := os.Stat(segPath(dir, idx))
		if err != nil {
			t.Fatal(err)
		}
		onDisk += fi.Size()
	}
	// On-disk = headers + records + terminator/footer; OnAppend counts
	// records only.
	if bytes >= onDisk {
		t.Fatalf("accounted %d bytes, on disk %d", bytes, onDisk)
	}
}

// snapshotDir captures every file's bytes under a session directory so a
// read-only pass can be proven to have modified nothing.
func snapshotDir(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	files := map[string][]byte{}
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		files[path] = b
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// TestJournalReplayReadOnly proves Replay delivers the same history
// Recover would — including stopping at a torn tail — while leaving every
// byte on disk untouched, and that it replays cleanly ended journals
// Recover skips.
func TestJournalReplayReadOnly(t *testing.T) {
	dir := t.TempDir()
	var torn *faultinject.TornWriter
	opts := Options{
		Dir:  dir,
		Sync: SyncBatch,
		Open: func(path string) (File, error) {
			f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
			if err != nil {
				return nil, err
			}
			torn = &faultinject.TornWriter{W: f, After: 901}
			return struct {
				*faultinject.TornWriter
				syncCloser
			}{torn, syncCloser{f}}, nil
		},
	}
	w, err := Create(opts, testMeta(21, false))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	writeSession(t, w, rng, 0, 10, 40)
	if !torn.Torn() {
		t.Fatal("tear point never crossed; raise the write volume")
	}
	w.Abandon()

	before := snapshotDir(t, dir)
	var rep recording
	st, stats, err := Replay(opts2(dir), 21, &rep)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if stats.TornSegments != 1 {
		t.Fatalf("replay stats = %+v, want one torn segment", stats)
	}
	after := snapshotDir(t, dir)
	if len(before) != len(after) {
		t.Fatalf("replay changed the file set: %d files before, %d after", len(before), len(after))
	}
	for path, b := range before {
		if string(b) != string(after[path]) {
			t.Fatalf("replay modified %s", path)
		}
	}

	// Recover over the untouched directory must see the identical history.
	var rec recording
	w2, st2, _, err := Recover(opts2(dir), 21, &rec)
	if err != nil {
		t.Fatalf("recover after replay: %v", err)
	}
	w2.Abandon()
	if st.Interval != st2.Interval || st.Observed != st2.Observed || st.Shed != st2.Shed {
		t.Fatalf("replay position %+v, recover position %+v", st, st2)
	}
	if len(rep.events()) != len(rec.events()) || len(rep.boundaries) != len(rec.boundaries) {
		t.Fatalf("replay saw %d events / %d boundaries, recover saw %d / %d",
			len(rep.events()), len(rep.boundaries), len(rec.events()), len(rec.boundaries))
	}

	// A cleanly ended journal: Recover skips it entirely (nil writer, no
	// handler calls); Replay still delivers the full history to readers.
	dir2 := t.TempDir()
	w3, err := Create(opts2(dir2), testMeta(22, false))
	if err != nil {
		t.Fatal(err)
	}
	events, _ := writeSession(t, w3, rng, 0, 4, 25)
	if err := w3.End(); err != nil {
		t.Fatal(err)
	}
	if err := w3.Close(); err != nil {
		t.Fatal(err)
	}
	var skipped recording
	wEnded, _, _, err := Recover(opts2(dir2), 22, &skipped)
	if err != nil || wEnded != nil || skipped.started {
		t.Fatalf("recover of an ended journal: w=%v started=%v err=%v", wEnded, skipped.started, err)
	}
	var full recording
	st3, _, err := Replay(opts2(dir2), 22, &full)
	if err != nil {
		t.Fatalf("replay of an ended journal: %v", err)
	}
	if len(full.events()) != len(events) || st3.Interval != 4 {
		t.Fatalf("ended-journal replay saw %d events to interval %d, want %d to 4",
			len(full.events()), st3.Interval, len(events))
	}
}
