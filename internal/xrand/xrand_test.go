package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("streams diverged at step %d: %x vs %x", i, x, y)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs of 100", same)
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for seed 0 from the SplitMix64 reference
	// implementation by Sebastiano Vigna.
	state := uint64(0)
	want := []uint64{
		0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f,
		0xf88bb8a8724c81ec, 0x1b39896a51a8749b,
	}
	for i, w := range want {
		if got := SplitMix64(&state); got != w {
			t.Fatalf("SplitMix64 output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("mean of %d uniforms = %v, want ~0.5", n, mean)
	}
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-squared sanity check over 16 buckets.
	r := New(17)
	const buckets, n = 16, 160000
	var counts [buckets]int
	for i := 0; i < n; i++ {
		counts[r.Uint64n(buckets)]++
	}
	expected := float64(n) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 15 degrees of freedom; 99.9th percentile is ~37.7.
	if chi2 > 37.7 {
		t.Fatalf("chi-squared = %v, distribution looks non-uniform: %v", chi2, counts)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		n := 1 + int(seed%64)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(23)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed the multiset: sum %d != %d", got, sum)
	}
}

func TestForkIndependence(t *testing.T) {
	r := New(5)
	child := r.Fork()
	// The child stream must not replay the parent stream.
	parentNext := r.Uint64()
	childNext := child.Uint64()
	if parentNext == childNext {
		t.Fatal("forked stream mirrors parent")
	}
}

func TestMix64AvalanchesLowBits(t *testing.T) {
	// Consecutive inputs must not map to consecutive outputs.
	adjacent := 0
	for i := uint64(0); i < 1000; i++ {
		if Mix64(i+1)-Mix64(i) == 1 {
			adjacent++
		}
	}
	if adjacent > 1 {
		t.Fatalf("Mix64 preserved adjacency %d times", adjacent)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkUint64n(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64n(12345)
	}
}
