// Package xrand provides small, fast, deterministic pseudo-random number
// generators used throughout the repository.
//
// Every stochastic component in this reproduction (hash-function tables,
// workload synthesis, trace generation) draws from xrand so that a given
// seed always yields a bit-identical run, on any platform, independent of
// the Go release. The generators are SplitMix64 (for seeding and cheap
// stateless streams) and xoshiro256** (for bulk generation).
package xrand

import "math/bits"

// SplitMix64 advances the given state and returns the next value of the
// SplitMix64 sequence. It is the recommended seeder for xoshiro-family
// generators and is also useful as a stateless mixing function.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 returns a well-mixed function of x. It is the SplitMix64 finalizer
// and is suitable for turning structured integers (indices, PCs) into
// uniformly distributed words.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Rand is a deterministic xoshiro256** generator.
// The zero value is not usable; construct one with New.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via SplitMix64, per the xoshiro
// authors' recommendation. Distinct seeds give effectively independent
// streams.
func New(seed uint64) *Rand {
	var r Rand
	sm := seed
	for i := range r.s {
		r.s[i] = SplitMix64(&sm)
	}
	// An all-zero state is the one forbidden state; SplitMix64 cannot
	// produce four zero outputs in a row, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	result := bits.RotateLeft64(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = bits.RotateLeft64(r.s[3], 45)
	return result
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform integer in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n called with zero n")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a deterministic pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the provided swap
// function, via the Fisher-Yates algorithm.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Fork returns a new generator whose stream is independent of r's future
// output. It is used to hand child components their own streams without
// coupling their consumption rates.
func (r *Rand) Fork() *Rand {
	return New(r.Uint64())
}
