// Package shard implements the sharded concurrent profiling engine: N
// independent MultiHash profilers (shards) fed through per-shard worker
// goroutines, presenting the same Profiler surface as a single MultiHash.
//
// # Why sharding is exact
//
// The paper's architecture is naturally partitionable. A tuple's treatment
// — which hash counters it touches, when it crosses the candidate
// threshold, which accumulator entry counts it — depends only on state
// that the tuple itself addresses. Two tuples interact only when they
// share hash-counter buckets or compete for accumulator entries, and both
// of those structures live entirely inside one MultiHash. Routing every
// occurrence of a tuple to the same shard (a pure function of the tuple's
// bits) therefore preserves per-interval semantics exactly:
//
//   - every shard sees precisely the sub-stream of tuples that route to
//     it, in stream order (the router serializes, and each shard's bounded
//     channel is FIFO with a single consumer);
//   - a shard's interval profile is identical to feeding that sub-stream
//     through a sequential MultiHash built from the same split
//     configuration (Config.ShardConfig);
//   - shards partition the tuple space, so the per-shard profiles are
//     disjoint and the merged interval profile is their union.
//
// TestShardedEquivalence in this package proves the property end-to-end.
//
// # Storage split
//
// Total modeled storage is conserved: each shard receives TotalEntries /
// NumShards hash counters (the per-table power-of-two shape is revalidated
// on the split config) and ceil(AccumCapacity / NumShards) accumulator
// entries. Each shard competes for 1/N of the counters with ~1/N of the
// stream, so aliasing pressure — and hence expected error — stays
// comparable to the unsharded profiler; it is not bit-identical to one
// monolithic MultiHash, only to the split-config ensemble above.
package shard

import (
	"errors"
	"fmt"
	"sync"

	"hwprof/internal/core"
	"hwprof/internal/event"
)

// ErrClosed is reported when a Profiler is used after Close or Drain. The
// public surface never panics on use-after-close: observation calls become
// no-ops that record ErrClosed (visible through Err), and Drain returns it
// directly.
var ErrClosed = errors.New("shard: profiler is closed")

// Defaults for the engine's tuning knobs.
const (
	// DefaultBatchSize is the per-shard batch buffer length.
	DefaultBatchSize = event.DefaultBatchSize
	// DefaultQueueDepth is the bounded per-shard channel depth, in
	// batches. Deep enough to keep workers busy across router hiccups,
	// shallow enough to bound buffered memory and interval-drain latency.
	DefaultQueueDepth = 8
)

// Config describes a sharded profiling engine. Core is the aggregate
// (unsharded) profiler configuration; its storage is split evenly across
// NumShards shards.
type Config struct {
	// Core is the aggregate profiler configuration that the engine
	// subdivides. Core.TotalEntries must be divisible by NumShards and
	// each shard's per-table share must remain a power of two.
	Core core.Config

	// NumShards is the number of concurrent shards (>= 1).
	NumShards int

	// BatchSize is the length of the per-shard batch buffers; 0 selects
	// DefaultBatchSize.
	BatchSize int

	// QueueDepth is the bounded per-shard channel depth in batches; 0
	// selects DefaultQueueDepth.
	QueueDepth int

	// WorkerHook, when non-nil, runs in each shard's worker goroutine
	// immediately before a batch is observed, with the shard index and the
	// batch. It exists for fault injection and tests: a panic inside the
	// hook is contained exactly like a panic in the shard's profiler, and
	// a sleep inside it models a slow shard. Leave nil in production.
	WorkerHook func(shard int, batch []event.Tuple)
}

// withDefaults fills in the zero tuning knobs. New applies it before
// Validate, so a zero BatchSize or QueueDepth means "use the default"
// on the constructor path but is rejected when Validate is called on a
// configuration directly.
func (c Config) withDefaults() Config {
	if c.BatchSize == 0 {
		c.BatchSize = DefaultBatchSize
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	return c
}

// Validate reports whether the configuration is usable: the tuning knobs
// are sane and every shard's split configuration is itself valid.
//
// Validate checks a fully resolved configuration, in which BatchSize and
// QueueDepth must be positive — an engine cannot run with zero-length
// batch buffers or unbuffered shard queues. New runs withDefaults before
// validating, so the zero values still mean "default" when constructing.
func (c Config) Validate() error {
	if c.NumShards < 1 {
		return fmt.Errorf("shard: NumShards %d must be >= 1", c.NumShards)
	}
	if c.BatchSize < 1 {
		return fmt.Errorf("shard: BatchSize %d must be positive (the zero value selects the default only through New)", c.BatchSize)
	}
	if c.QueueDepth < 1 {
		return fmt.Errorf("shard: QueueDepth %d must be positive (the zero value selects the default only through New)", c.QueueDepth)
	}
	if c.Core.TotalEntries%c.NumShards != 0 {
		return fmt.Errorf("shard: TotalEntries %d not divisible by NumShards %d",
			c.Core.TotalEntries, c.NumShards)
	}
	for i := 0; i < c.NumShards; i++ {
		if err := c.ShardConfig(i).Validate(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// ShardConfig returns the split configuration of shard i: 1/NumShards of
// the hash counters, ceil(1/NumShards) of the accumulator entries, the
// aggregate interval length and threshold (candidacy is defined against
// the whole interval, not the shard's share of it), and a per-shard hash
// seed so shards alias independently.
func (c Config) ShardConfig(i int) core.Config {
	sc := c.Core
	sc.TotalEntries = c.Core.TotalEntries / c.NumShards
	cap := c.Core.EffectiveAccumCapacity()
	sc.AccumCapacity = (cap + c.NumShards - 1) / c.NumShards
	sc.Seed = shardSeed(c.Core.Seed, i)
	return sc
}

// shardSeed derives shard i's hash seed from the aggregate seed.
func shardSeed(seed uint64, i int) uint64 {
	return mix64(seed ^ (uint64(i)+1)*0x9e3779b97f4a7c15)
}

// RouteHash is the stable tuple-to-shard hash: a SplitMix64-style mix of
// both tuple members, independent of (and uncorrelated with) the byte-table
// hash functions inside the shards. It is a pure function of the tuple, so
// every occurrence of a tuple routes to the same shard — the property the
// equivalence argument rests on.
func RouteHash(tp event.Tuple) uint64 {
	return mix64(mix64(tp.A) ^ tp.B)
}

// mix64 is the SplitMix64 finalizer.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// request is one unit of work on a shard's channel: either a pooled batch
// of tuples to observe, or (batch == nil) an interval barrier to answer
// with the shard's snapshot.
type request struct {
	batch *[]event.Tuple
	out   chan<- map[event.Tuple]uint64
}

// Profiler is the sharded concurrent engine. It implements the same
// Observe / ObserveBatch / EndInterval surface as core.MultiHash and may be
// driven by core.Run and core.RunBatched unchanged.
//
// Observe, ObserveBatch and EndInterval are safe for concurrent use by
// multiple producer goroutines: the router serializes under a mutex, and
// EndInterval drains every shard to quiescence before snapshotting, so an
// interval boundary is a consistent cut of everything routed before the
// call. Events routed concurrently with an EndInterval land in one
// interval or the other, exactly as concurrent Observe calls on a locked
// sequential profiler would.
//
// # Failure containment
//
// A panic inside a shard worker (the shard's MultiHash or a WorkerHook)
// does not crash the process: it is recovered in the worker, recorded as
// the engine's terminal error, and surfaced through Err. A failed shard
// keeps consuming — and discarding — its queue so producers and interval
// barriers never block on it; the engine degrades to reporting the
// healthy shards' profiles alongside the non-nil Err.
//
// A Profiler owns NumShards goroutines. Close shuts them down gracefully,
// letting every queued batch drain first; Drain does the same but also
// returns the unfinished interval's profile. Using a closed Profiler does
// not panic: observations become no-ops, snapshots come back nil, and
// ErrClosed is reported through Err (or directly from Drain).
type Profiler struct {
	cfg     Config
	workers []*worker
	pool    sync.Pool // *[]event.Tuple, capacity cfg.BatchSize

	mu      sync.Mutex
	pending []*[]event.Tuple // per shard, partially filled route buffers
	events  uint64
	closed  bool
	spare   map[event.Tuple]uint64   // recycled merge map, see Recycle
	snaps   []map[event.Tuple]uint64 // barrier merge scratch, len NumShards

	errMu sync.Mutex
	err   error // first terminal failure: worker panic or use-after-close

	wg sync.WaitGroup
}

// worker is one shard: a MultiHash, the channel that feeds it, and the
// failure flag of the goroutine serving it. failed is touched only by the
// worker goroutine itself.
type worker struct {
	idx    int
	mh     *core.MultiHash
	ch     chan request
	failed bool
}

// New builds the engine and starts its shard goroutines.
func New(cfg Config) (*Profiler, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Profiler{
		cfg:     cfg,
		workers: make([]*worker, cfg.NumShards),
		pending: make([]*[]event.Tuple, cfg.NumShards),
		snaps:   make([]map[event.Tuple]uint64, cfg.NumShards),
	}
	p.pool.New = func() any {
		buf := make([]event.Tuple, 0, cfg.BatchSize)
		return &buf
	}
	// Build every shard before starting any goroutine, so a failure here
	// leaks nothing.
	for i := range p.workers {
		mh, err := core.NewMultiHash(cfg.ShardConfig(i))
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		// Workers receive batches of exactly BatchSize events; size the
		// batch pipeline's scratch for them now, not on the first batch.
		mh.PrewarmBatch(cfg.BatchSize)
		p.workers[i] = &worker{idx: i, mh: mh, ch: make(chan request, cfg.QueueDepth)}
		p.pending[i] = p.pool.Get().(*[]event.Tuple)
	}
	for _, w := range p.workers {
		p.wg.Add(1)
		go p.serve(w)
	}
	return p, nil
}

// serve is the shard goroutine: it drains batches into the shard's
// MultiHash and answers interval barriers with snapshots. It never exits
// early — even after a panic the loop keeps consuming so producers and
// barriers cannot block on a dead shard — and it only returns when the
// channel is closed by Close/Drain.
func (p *Profiler) serve(w *worker) {
	defer p.wg.Done()
	for req := range w.ch {
		p.handle(w, req)
	}
}

// handle processes one request, converting a panic — in the shard's
// profiler or in a WorkerHook — into a terminal engine error instead of
// crashing the process. After a failure the shard discards batches and
// answers barriers with nil snapshots.
func (p *Profiler) handle(w *worker, req request) {
	defer func() {
		if r := recover(); r != nil {
			w.failed = true
			p.fail(fmt.Errorf("shard %d: worker panic: %v", w.idx, r))
			if req.out != nil {
				req.out <- nil // the barrier must still be answered
			}
		}
	}()
	if req.batch == nil {
		if w.failed {
			req.out <- nil
			return
		}
		req.out <- w.mh.EndInterval()
		return
	}
	if !w.failed {
		if p.cfg.WorkerHook != nil {
			p.cfg.WorkerHook(w.idx, *req.batch)
		}
		w.mh.ObserveBatch(*req.batch)
	}
	*req.batch = (*req.batch)[:0]
	p.pool.Put(req.batch)
}

// fail records the engine's first terminal error; later failures keep the
// original, which is the one that explains the cascade.
func (p *Profiler) fail(err error) {
	p.errMu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.errMu.Unlock()
}

// Err returns the engine's terminal error, if any: a contained worker
// panic, or ErrClosed after the profiler was used post-Close. A healthy
// engine — including one that was cleanly closed and never misused —
// reports nil.
func (p *Profiler) Err() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.err
}

// Config returns the configuration the engine was built with (with
// defaults filled in).
func (p *Profiler) Config() Config { return p.cfg }

// NumShards returns the shard count.
func (p *Profiler) NumShards() int { return p.cfg.NumShards }

// ShardOf returns the shard index tp routes to.
func (p *Profiler) ShardOf(tp event.Tuple) int {
	return int(RouteHash(tp) % uint64(p.cfg.NumShards))
}

// EventsThisInterval returns how many events have been routed since the
// last interval boundary.
func (p *Profiler) EventsThisInterval() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.events
}

// Observe routes one event to its shard. After Close it is a no-op that
// records ErrClosed (see Err) instead of panicking.
func (p *Profiler) Observe(tp event.Tuple) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		p.fail(ErrClosed)
		return
	}
	p.route(tp)
	p.events++
}

// ObserveBatch routes every tuple of batch to its shard, taking the router
// lock once for the whole batch. batch is not retained. After Close it is
// a no-op that records ErrClosed (see Err) instead of panicking.
func (p *Profiler) ObserveBatch(batch []event.Tuple) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		p.fail(ErrClosed)
		return
	}
	for _, tp := range batch {
		p.route(tp)
	}
	p.events += uint64(len(batch))
}

// route appends tp to its shard's pending buffer, shipping the buffer to
// the shard when full. Callers hold p.mu.
func (p *Profiler) route(tp event.Tuple) {
	s := int(RouteHash(tp) % uint64(len(p.workers)))
	buf := p.pending[s]
	*buf = append(*buf, tp)
	if len(*buf) == cap(*buf) {
		p.workers[s].ch <- request{batch: buf}
		p.pending[s] = p.pool.Get().(*[]event.Tuple)
	}
}

// EndInterval flushes the pending route buffers, drains every shard to
// quiescence, snapshots each shard, applies each shard's interval-boundary
// policy, and returns the union of the shard snapshots — the engine's
// profile for the interval just finished. A failed shard contributes
// nothing (its loss is reported through Err); after Close, EndInterval
// returns nil and records ErrClosed.
func (p *Profiler) EndInterval() map[event.Tuple]uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		p.fail(ErrClosed)
		return nil
	}
	merged := p.barrier()
	p.events = 0
	return merged
}

// barrier flushes partial route buffers, posts a snapshot barrier to every
// shard, and merges the answers. Callers hold p.mu.
//
// The merge target is a previously recycled map when one is available, and
// after merging each shard's snapshot is recycled back into that shard's
// MultiHash — safe because the barrier leaves every worker quiescent, and
// the next channel send orders the recycled map's reuse after this write.
// In steady state (caller recycles, see Recycle) an interval boundary
// therefore allocates nothing.
func (p *Profiler) barrier() map[event.Tuple]uint64 {
	// Flush partial buffers so the barrier below follows every event of
	// the interval in each shard's FIFO.
	for s, buf := range p.pending {
		if len(*buf) > 0 {
			p.workers[s].ch <- request{batch: buf}
			p.pending[s] = p.pool.Get().(*[]event.Tuple)
		}
	}

	out := make(chan map[event.Tuple]uint64, len(p.workers))
	for _, w := range p.workers {
		w.ch <- request{out: out}
	}

	snaps := p.snaps
	for i := range p.workers {
		snaps[i] = <-out // answers arrive in arbitrary shard order
	}

	// Shards partition the tuple space, so the union is disjoint. Failed
	// shards answer nil; when every shard has failed the interval is lost
	// and the profile is nil, as before.
	var merged map[event.Tuple]uint64
	for i, snap := range snaps {
		if snap == nil {
			continue
		}
		if merged == nil {
			if merged = p.spare; merged == nil {
				merged = make(map[event.Tuple]uint64, 2*len(snap))
			}
			p.spare = nil
		}
		for tp, c := range snap {
			merged[tp] = c
		}
		// Hand the shard's snapshot back to a (quiescent) shard profiler
		// for its next interval. Which shard gets which map is
		// irrelevant; one spare each is what matters.
		clear(snap)
		p.workers[i].mh.Recycle(snap)
		snaps[i] = nil
	}
	return merged
}

// Recycle hands an interval profile back to the engine for reuse as a
// future merge target (see core.Recycler). The map is cleared; callers
// must no longer touch it. The batched drivers call this automatically
// under RunConfig.ReuseProfiles.
func (p *Profiler) Recycle(m map[event.Tuple]uint64) {
	if m == nil {
		return
	}
	clear(m)
	p.mu.Lock()
	p.spare = m
	p.mu.Unlock()
}

// Drain gracefully shuts the engine down and salvages the unfinished
// interval: it flushes the pending route buffers, lets every shard work
// through its queue, snapshots the partial interval, stops the shard
// goroutines, and returns the partial interval's profile — exactly the
// events observed since the last boundary, as a sequential replay of each
// shard's sub-stream would report them. The error is the engine's terminal
// error (nil for a healthy engine, the panic error for a degraded one) or
// ErrClosed when the engine was already shut down.
func (p *Profiler) Drain() (map[event.Tuple]uint64, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	p.closed = true
	merged := p.barrier()
	p.events = 0
	// The barrier answers only after each shard worked through its queue,
	// so every channel is empty here and close just releases the workers.
	for _, w := range p.workers {
		close(w.ch)
	}
	p.mu.Unlock()
	p.wg.Wait()
	return merged, p.Err()
}

// Close shuts the engine down gracefully: queued batches are flushed into
// the shards, the shard goroutines stop, and their storage is released.
// The unfinished interval's profile is computed but discarded — call Drain
// instead to keep it. After Close the Profiler records ErrClosed on use
// rather than panicking. Close is idempotent.
func (p *Profiler) Close() {
	p.Drain()
}

var _ core.BatchProfiler = (*Profiler)(nil)
