package shard

import (
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"hwprof/internal/core"
	"hwprof/internal/event"
	"hwprof/internal/synth"
)

// baseConfig is the paper's best multi-hash profiler in the 10K regime,
// whose 2048 counters split evenly over 1, 2, 4 or 8 shards.
func baseConfig() core.Config {
	cfg := core.BestMultiHash(core.ShortIntervalConfig())
	cfg.Seed = 42
	return cfg
}

func newEngine(t *testing.T, cfg Config) *Profiler {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

// workload drains n events of a synthetic benchmark analog.
func workload(t *testing.T, n uint64) []event.Tuple {
	t.Helper()
	g, err := synth.NewBenchmark("gcc", event.KindValue, 7)
	if err != nil {
		t.Fatal(err)
	}
	return event.Collect(event.Limit(g, n), 0)
}

// TestShardedEquivalence is the engine's core correctness property: for a
// fixed workload, the concurrent engine's interval profiles are identical
// — same tuples, same counts — to routing each tuple to its shard and
// running every shard's sub-stream through a sequential MultiHash built
// from the same split configuration.
func TestShardedEquivalence(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 8} {
		cfg := Config{Core: baseConfig(), NumShards: shards, BatchSize: 64, QueueDepth: 2}
		engine := newEngine(t, cfg)

		seq := make([]*core.MultiHash, shards)
		for i := range seq {
			m, err := core.NewMultiHash(cfg.ShardConfig(i))
			if err != nil {
				t.Fatal(err)
			}
			seq[i] = m
		}

		const intervals = 3
		ivLen := cfg.Core.IntervalLength
		tuples := workload(t, uint64(intervals)*ivLen)
		for iv := 0; iv < intervals; iv++ {
			chunk := tuples[uint64(iv)*ivLen : uint64(iv+1)*ivLen]
			engine.ObserveBatch(chunk)
			for _, tp := range chunk {
				seq[engine.ShardOf(tp)].Observe(tp)
			}

			got := engine.EndInterval()
			want := make(map[event.Tuple]uint64)
			for _, m := range seq {
				for tp, c := range m.EndInterval() {
					want[tp] = c
				}
			}
			if len(want) == 0 {
				t.Fatalf("%d shards interval %d: empty reference profile", shards, iv)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%d shards interval %d: profiles diverge\n got:  %v\n want: %v",
					shards, iv, got, want)
			}
		}
	}
}

// TestObserveMatchesObserveBatch: the two producer entry points route
// identically.
func TestObserveMatchesObserveBatch(t *testing.T) {
	cfg := Config{Core: baseConfig(), NumShards: 4}
	one, bat := newEngine(t, cfg), newEngine(t, cfg)
	tuples := workload(t, cfg.Core.IntervalLength)
	for _, tp := range tuples {
		one.Observe(tp)
	}
	bat.ObserveBatch(tuples)
	if a, b := one.EndInterval(), bat.EndInterval(); !reflect.DeepEqual(a, b) {
		t.Fatal("Observe and ObserveBatch diverge")
	}
}

func TestRouteHashStability(t *testing.T) {
	engine := newEngine(t, Config{Core: baseConfig(), NumShards: 8})
	tp := event.Tuple{A: 0x1234, B: 0x9876}
	s := engine.ShardOf(tp)
	for i := 0; i < 100; i++ {
		if engine.ShardOf(tp) != s {
			t.Fatal("routing is not stable")
		}
	}
	// The route hash must spread distinct tuples over all shards.
	seen := make(map[int]bool)
	for _, tp := range workload(t, 10_000) {
		seen[engine.ShardOf(tp)] = true
	}
	if len(seen) != 8 {
		t.Fatalf("10K events reached only %d of 8 shards", len(seen))
	}
}

// TestStorageSplitConserved: sharding must not grow (or shrink) the
// modeled hash storage, and the accumulator capacity may only grow by the
// ceiling slack.
func TestStorageSplitConserved(t *testing.T) {
	cfg := Config{Core: baseConfig(), NumShards: 4}
	totalEntries, totalAccum := 0, 0
	for i := 0; i < cfg.NumShards; i++ {
		sc := cfg.ShardConfig(i)
		totalEntries += sc.TotalEntries
		totalAccum += sc.EffectiveAccumCapacity()
	}
	if totalEntries != cfg.Core.TotalEntries {
		t.Fatalf("hash counters not conserved: %d vs %d", totalEntries, cfg.Core.TotalEntries)
	}
	want := cfg.Core.EffectiveAccumCapacity()
	if totalAccum < want || totalAccum >= want+cfg.NumShards {
		t.Fatalf("accumulator capacity %d outside [%d, %d)", totalAccum, want, want+cfg.NumShards)
	}
}

func TestShardSeedsDistinct(t *testing.T) {
	cfg := Config{Core: baseConfig(), NumShards: 8}
	seen := make(map[uint64]bool)
	for i := 0; i < cfg.NumShards; i++ {
		seen[cfg.ShardConfig(i).Seed] = true
	}
	if len(seen) != cfg.NumShards {
		t.Fatalf("only %d distinct shard seeds", len(seen))
	}
}

func TestValidateRejects(t *testing.T) {
	bad := map[string]Config{
		"zero shards":       {Core: baseConfig(), NumShards: 0},
		"indivisible split": {Core: baseConfig(), NumShards: 3},
		"negative batch":    {Core: baseConfig(), NumShards: 2, BatchSize: -1},
		"negative queue":    {Core: baseConfig(), NumShards: 2, QueueDepth: -1},
		"invalid core":      {NumShards: 2},
	}
	for name, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestValidateRejectsZeroKnobsDirectly: Validate checks a fully resolved
// configuration, so the zero tuning knobs — which mean "default" only on
// the New constructor path, where withDefaults runs first — are invalid
// when Validate is called directly.
func TestValidateRejectsZeroKnobsDirectly(t *testing.T) {
	if err := (Config{Core: baseConfig(), NumShards: 2, QueueDepth: 1}).Validate(); err == nil {
		t.Error("Validate accepted BatchSize 0")
	}
	if err := (Config{Core: baseConfig(), NumShards: 2, BatchSize: 64}).Validate(); err == nil {
		t.Error("Validate accepted QueueDepth 0")
	}
	// The same zero knobs construct fine through New (defaults fill in),
	// and the engine reports the defaulted values.
	engine := newEngine(t, Config{Core: baseConfig(), NumShards: 2})
	if got := engine.Config(); got.BatchSize != DefaultBatchSize || got.QueueDepth != DefaultQueueDepth {
		t.Errorf("defaults not applied: BatchSize %d, QueueDepth %d", got.BatchSize, got.QueueDepth)
	}
}

func TestEventsThisInterval(t *testing.T) {
	engine := newEngine(t, Config{Core: baseConfig(), NumShards: 2})
	engine.ObserveBatch(workload(t, 1234))
	if got := engine.EventsThisInterval(); got != 1234 {
		t.Fatalf("EventsThisInterval = %d, want 1234", got)
	}
	engine.EndInterval()
	if got := engine.EventsThisInterval(); got != 0 {
		t.Fatalf("EventsThisInterval after boundary = %d, want 0", got)
	}
}

func TestCloseIdempotentAndUseAfterCloseReportsErrClosed(t *testing.T) {
	engine, err := New(Config{Core: baseConfig(), NumShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	engine.Close()
	engine.Close() // must not panic or deadlock
	if err := engine.Err(); err != nil {
		t.Fatalf("clean Close left error %v", err)
	}
	// Use after Close must not panic: the misuse is recorded instead.
	engine.Observe(event.Tuple{A: 1})
	if !errors.Is(engine.Err(), ErrClosed) {
		t.Fatalf("Err after use-after-Close = %v, want ErrClosed", engine.Err())
	}
	engine.ObserveBatch([]event.Tuple{{A: 2}})
	if snap := engine.EndInterval(); snap != nil {
		t.Fatal("EndInterval after Close returned a profile")
	}
	if _, err := engine.Drain(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Drain after Close = %v, want ErrClosed", err)
	}
}

// TestDrainReturnsPartialInterval is the graceful-shutdown contract: Drain
// on a half-full interval returns exactly the events observed since the
// last boundary, verified against a sequential replay of each shard's
// sub-stream through the same split configurations.
func TestDrainReturnsPartialInterval(t *testing.T) {
	for _, shards := range []int{1, 4} {
		cfg := Config{Core: baseConfig(), NumShards: shards, BatchSize: 64, QueueDepth: 2}
		engine, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}

		seq := make([]*core.MultiHash, shards)
		for i := range seq {
			m, err := core.NewMultiHash(cfg.ShardConfig(i))
			if err != nil {
				t.Fatal(err)
			}
			seq[i] = m
		}

		// One full interval, then a half interval left unfinished.
		ivLen := cfg.Core.IntervalLength
		tuples := workload(t, ivLen+ivLen/2)
		engine.ObserveBatch(tuples[:ivLen])
		engine.EndInterval()
		engine.ObserveBatch(tuples[ivLen:])
		for _, tp := range tuples[:ivLen] {
			seq[engine.ShardOf(tp)].Observe(tp)
		}
		for _, m := range seq {
			m.EndInterval()
		}
		for _, tp := range tuples[ivLen:] {
			seq[engine.ShardOf(tp)].Observe(tp)
		}

		got, err := engine.Drain()
		if err != nil {
			t.Fatalf("%d shards: Drain: %v", shards, err)
		}
		want := make(map[event.Tuple]uint64)
		for _, m := range seq {
			for tp, c := range m.EndInterval() {
				want[tp] = c
			}
		}
		if len(want) == 0 {
			t.Fatalf("%d shards: empty reference partial profile", shards)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%d shards: Drain diverges from sequential replay\n got:  %v\n want: %v",
				shards, got, want)
		}
	}
}

// TestWorkerPanicContained: a panic inside a shard worker must not crash
// the process or deadlock the engine; it surfaces through Err and the
// remaining shards keep reporting.
func TestWorkerPanicContained(t *testing.T) {
	cfg := Config{Core: baseConfig(), NumShards: 4, BatchSize: 8, QueueDepth: 2}
	var fired atomic.Bool
	cfg.WorkerHook = func(shard int, batch []event.Tuple) {
		if shard == 1 && fired.CompareAndSwap(false, true) {
			panic("injected shard fault")
		}
	}
	engine, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer engine.Close()

	engine.ObserveBatch(workload(t, 10_000))
	profile := engine.EndInterval() // must not deadlock on the failed shard
	if err := engine.Err(); err == nil || !strings.Contains(err.Error(), "worker panic") {
		t.Fatalf("Err = %v, want contained worker panic", err)
	}
	// The healthy shards' profile still comes through.
	if len(profile) == 0 {
		t.Fatal("all shards lost to one worker panic")
	}
	// The engine keeps absorbing events without blocking after the failure.
	engine.ObserveBatch(workload(t, 10_000))
	engine.EndInterval()
}
