package shard

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"hwprof/internal/core"
	"hwprof/internal/event"
	"hwprof/internal/xrand"
)

// checkGoroutines records the current goroutine count and registers a
// cleanup that fails the test if the count has not settled back to the
// baseline by the end — the goleak-style assertion every teardown path in
// this file runs under.
func checkGoroutines(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		// Allow the runtime a moment to retire exited goroutines.
		deadline := time.Now().Add(2 * time.Second)
		for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
			runtime.Gosched()
			time.Sleep(10 * time.Millisecond)
		}
		if got := runtime.NumGoroutine(); got > before {
			t.Errorf("goroutines leaked: %d before, %d after", before, got)
		}
	})
}

// TestConcurrentProducersAndIntervals drives the full concurrent lifecycle
// the engine promises to support — several producer goroutines calling
// Observe/ObserveBatch while another goroutine cuts interval boundaries —
// and is meaningful chiefly under -race: every router, channel and pool
// interaction is exercised across goroutines.
func TestConcurrentProducersAndIntervals(t *testing.T) {
	checkGoroutines(t)
	engine := newEngine(t, Config{Core: baseConfig(), NumShards: 4, BatchSize: 32, QueueDepth: 2})

	const producers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := xrand.New(seed)
			batch := make([]event.Tuple, 64)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := range batch {
					batch[i] = event.Tuple{A: uint64(r.Intn(32)), B: uint64(r.Intn(4))}
				}
				engine.ObserveBatch(batch)
				engine.Observe(event.Tuple{A: seed, B: 0xff})
			}
		}(uint64(p + 1))
	}

	// Concurrent interval boundaries: each must return a self-consistent
	// (possibly empty) snapshot without panicking or deadlocking.
	for i := 0; i < 25; i++ {
		profile := engine.EndInterval()
		for tp, c := range profile {
			if c == 0 {
				t.Errorf("interval %d: tuple %v reported with zero count", i, tp)
			}
		}
		time.Sleep(time.Millisecond)
	}

	close(stop)
	wg.Wait()
	engine.EndInterval() // drain whatever the producers left behind
}

// TestCloseLeaksNoGoroutines builds and tears down engines and checks the
// goroutine count settles back to the baseline.
func TestCloseLeaksNoGoroutines(t *testing.T) {
	checkGoroutines(t)
	for i := 0; i < 10; i++ {
		engine, err := New(Config{Core: baseConfig(), NumShards: 8, QueueDepth: 1})
		if err != nil {
			t.Fatal(err)
		}
		engine.ObserveBatch(workload(t, 5_000))
		engine.EndInterval()
		engine.Close()
	}
}

// TestDrainLeaksNoGoroutines: the salvage path must release the shard
// goroutines exactly like Close, with the partial profile intact.
func TestDrainLeaksNoGoroutines(t *testing.T) {
	checkGoroutines(t)
	for i := 0; i < 10; i++ {
		engine, err := New(Config{Core: baseConfig(), NumShards: 8, QueueDepth: 1})
		if err != nil {
			t.Fatal(err)
		}
		engine.ObserveBatch(workload(t, 5_000))
		profile, err := engine.Drain()
		if err != nil {
			t.Fatal(err)
		}
		if len(profile) == 0 {
			t.Fatal("Drain lost the partial interval")
		}
	}
}

// TestCancellationLeaksNoGoroutines: cancelling a batched run over the
// engine mid-interval must stop the driver promptly and leave nothing
// behind once the engine is drained.
func TestCancellationLeaksNoGoroutines(t *testing.T) {
	checkGoroutines(t)
	engine, err := New(Config{Core: baseConfig(), NumShards: 4, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	events := 0
	src := event.FuncSource(func() (event.Tuple, bool) {
		events++
		if events == int(baseConfig().IntervalLength)/2 {
			cancel() // mid-interval: the driver must notice at the next batch
		}
		return event.Tuple{A: uint64(events % 64), B: 1}, true
	})
	_, err = core.RunBatchedContext(ctx, src, engine,
		core.RunConfig{IntervalLength: baseConfig().IntervalLength}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := engine.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestCloseDuringProduction: Close must drain gracefully even when
// producers race it; racing producers either land their events or no-op
// with ErrClosed recorded, and nothing panics or deadlocks.
func TestCloseDuringProduction(t *testing.T) {
	checkGoroutines(t)
	engine, err := New(Config{Core: baseConfig(), NumShards: 4, BatchSize: 16, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := xrand.New(seed)
			for i := 0; i < 10_000; i++ {
				engine.Observe(event.Tuple{A: r.Uint64() % 64, B: 1})
			}
		}(uint64(p + 1))
	}
	time.Sleep(time.Millisecond)
	engine.Close()
	wg.Wait()
	// The only acceptable post-race error is the recorded use-after-close.
	if err := engine.Err(); err != nil && !errors.Is(err, ErrClosed) {
		t.Fatalf("unexpected engine error: %v", err)
	}
}
