package shard

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"hwprof/internal/event"
	"hwprof/internal/xrand"
)

// TestConcurrentProducersAndIntervals drives the full concurrent lifecycle
// the engine promises to support — several producer goroutines calling
// Observe/ObserveBatch while another goroutine cuts interval boundaries —
// and is meaningful chiefly under -race: every router, channel and pool
// interaction is exercised across goroutines.
func TestConcurrentProducersAndIntervals(t *testing.T) {
	engine := newEngine(t, Config{Core: baseConfig(), NumShards: 4, BatchSize: 32, QueueDepth: 2})

	const producers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := xrand.New(seed)
			batch := make([]event.Tuple, 64)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := range batch {
					batch[i] = event.Tuple{A: uint64(r.Intn(32)), B: uint64(r.Intn(4))}
				}
				engine.ObserveBatch(batch)
				engine.Observe(event.Tuple{A: seed, B: 0xff})
			}
		}(uint64(p + 1))
	}

	// Concurrent interval boundaries: each must return a self-consistent
	// (possibly empty) snapshot without panicking or deadlocking.
	for i := 0; i < 25; i++ {
		profile := engine.EndInterval()
		for tp, c := range profile {
			if c == 0 {
				t.Errorf("interval %d: tuple %v reported with zero count", i, tp)
			}
		}
		time.Sleep(time.Millisecond)
	}

	close(stop)
	wg.Wait()
	engine.EndInterval() // drain whatever the producers left behind
}

// TestCloseLeaksNoGoroutines builds and tears down engines and checks the
// goroutine count settles back to the baseline.
func TestCloseLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		engine, err := New(Config{Core: baseConfig(), NumShards: 8, QueueDepth: 1})
		if err != nil {
			t.Fatal(err)
		}
		engine.ObserveBatch(workload(t, 5_000))
		engine.EndInterval()
		engine.Close()
	}
	// Allow the runtime a moment to retire exited goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, got)
	}
}

// TestCloseDuringProduction: Close must wait for the shard goroutines even
// when producers race it; racing producers either complete or panic with
// the documented use-after-Close message, and nothing deadlocks.
func TestCloseDuringProduction(t *testing.T) {
	engine, err := New(Config{Core: baseConfig(), NumShards: 4, BatchSize: 16, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			defer func() { recover() }() // use-after-Close panic is the documented outcome
			r := xrand.New(seed)
			for i := 0; i < 10_000; i++ {
				engine.Observe(event.Tuple{A: r.Uint64() % 64, B: 1})
			}
		}(uint64(p + 1))
	}
	time.Sleep(time.Millisecond)
	engine.Close()
	wg.Wait()
}
