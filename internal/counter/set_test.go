package counter

import (
	"testing"

	"hwprof/internal/xrand"
)

func TestNewSetValidation(t *testing.T) {
	cases := []struct {
		tables, size int
		width        uint
	}{
		{0, 8, 8}, {-1, 8, 8}, {2, 0, 8}, {2, -4, 8}, {2, 8, 0}, {2, 8, 65},
	}
	for _, c := range cases {
		if _, err := NewSet(c.tables, c.size, c.width); err == nil {
			t.Errorf("NewSet(%d, %d, %d) accepted invalid shape", c.tables, c.size, c.width)
		}
	}
}

func TestSetBankOffsets(t *testing.T) {
	s, err := NewSet(4, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Same index in different banks must be independent counters.
	s.Inc(0, 3)
	s.Add(2, 3, 5)
	for bank := 0; bank < 4; bank++ {
		want := uint64(0)
		switch bank {
		case 0:
			want = 1
		case 2:
			want = 5
		}
		if got := s.Get(bank, 3); got != want {
			t.Errorf("bank %d counter 3 = %d, want %d", bank, got, want)
		}
		if got := s.GetAt(s.Base(bank) + 3); got != want {
			t.Errorf("GetAt(Base(%d)+3) = %d, want %d", bank, got, want)
		}
	}
}

// TestSetEpochFlush verifies the O(1) flush: after Flush, every counter
// reads zero without any word having been rewritten.
func TestSetEpochFlush(t *testing.T) {
	s, err := NewSet(2, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 16; j++ {
		s.AddAt(j, uint64(j))
	}
	s.Flush()
	for j := 0; j < 16; j++ {
		if got := s.GetAt(j); got != 0 {
			t.Fatalf("counter %d = %d after Flush, want 0", j, got)
		}
	}
	// A stale counter incremented after the flush restarts from zero, not
	// from its pre-flush value.
	if got := s.IncAt(5); got != 1 {
		t.Fatalf("IncAt after Flush = %d, want 1", got)
	}
}

// TestSetEpochWrap drives the packed epoch tag all the way around: the
// sweep at wrap must behave exactly like every other flush.
func TestSetEpochWrap(t *testing.T) {
	const width = 24 // 8 tag bits: wraps after 255 epoch bumps
	s, err := NewSet(1, 4, width)
	if err != nil {
		t.Fatal(err)
	}
	wraps := int(s.epochMax) + 2 // cross the sweep boundary with margin
	for f := 0; f < wraps; f++ {
		if got := s.IncAt(1); got != 1 {
			t.Fatalf("flush %d: IncAt = %d, want 1 (leak across flush)", f, got)
		}
		s.AddAt(3, 7)
		s.Flush()
		for j := 0; j < 4; j++ {
			if got := s.GetAt(j); got != 0 {
				t.Fatalf("flush %d: counter %d = %d after Flush, want 0", f, j, got)
			}
		}
	}
}

// TestSetPackedMatchesWide runs the same random operation stream through a
// packed set and a wide (uint64 fallback) set of the same saturation
// point, checking they agree at every step. Width 24 packs; to get an
// equal-max wide set we use the same width via a forced-wide twin.
func TestSetPackedMatchesWide(t *testing.T) {
	const width = 12
	packed, err := NewSet(2, 32, width)
	if err != nil {
		t.Fatal(err)
	}
	if packed.words == nil {
		t.Fatal("width 12 should take the packed path")
	}
	// Reference: same shape forced onto the wide path.
	wide := &Set{tables: 2, size: 32, width: width, max: 1<<width - 1,
		wide: make([]uint64, 2*32)}

	r := xrand.New(0x5E7)
	for op := 0; op < 200_000; op++ {
		j := int(r.Uint64() % 64)
		switch r.Uint64() % 16 {
		case 0:
			packed.ResetAt(j)
			wide.ResetAt(j)
		case 1:
			d := r.Uint64() % 5000 // overshoots max often: exercises saturation
			if p, w := packed.AddAt(j, d), wide.AddAt(j, d); p != w {
				t.Fatalf("op %d: AddAt(%d, %d) packed %d, wide %d", op, j, d, p, w)
			}
		case 2:
			packed.Flush()
			wide.Flush()
		default:
			if p, w := packed.IncAt(j), wide.IncAt(j); p != w {
				t.Fatalf("op %d: IncAt(%d) packed %d, wide %d", op, j, p, w)
			}
		}
		if p, w := packed.GetAt(j), wide.GetAt(j); p != w {
			t.Fatalf("op %d: GetAt(%d) packed %d, wide %d", op, j, p, w)
		}
	}
}

func TestSetWideFallback(t *testing.T) {
	s, err := NewSet(2, 8, 32) // width > 24: wide path
	if err != nil {
		t.Fatal(err)
	}
	if s.wide == nil {
		t.Fatal("width 32 should take the wide path")
	}
	if got := s.Add(1, 2, 1<<40); got != s.Max() {
		t.Errorf("wide Add over max = %d, want saturation at %d", got, s.Max())
	}
	s.Flush()
	if got := s.Get(1, 2); got != 0 {
		t.Errorf("wide counter = %d after Flush, want 0", got)
	}
}

func TestSetBytes(t *testing.T) {
	// Paper configuration: 4 tables × 512 entries × 3-byte counters = 6 KB.
	s, err := NewSet(4, 512, 24)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Bytes(); got != 6144 {
		t.Errorf("Bytes() = %d, want 6144", got)
	}
}

// TestBankStillIndependent guards the Bank facade over a one-table Set.
func TestBankMatchesSet(t *testing.T) {
	b, err := NewBank(16, 8)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSet(1, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(3)
	for op := 0; op < 10_000; op++ {
		i := uint32(r.Uint64() % 16)
		switch r.Uint64() % 8 {
		case 0:
			b.Reset(i)
			s.Reset(0, i)
		case 1:
			b.Flush()
			s.Flush()
		default:
			if bb, ss := b.Inc(i), s.Inc(0, i); bb != ss {
				t.Fatalf("op %d: Bank.Inc %d, Set.Inc %d", op, bb, ss)
			}
		}
		if bb, ss := b.Get(i), s.Get(0, i); bb != ss {
			t.Fatalf("op %d: Bank.Get %d, Set.Get %d", op, bb, ss)
		}
	}
}

func BenchmarkSetIncAt(b *testing.B) {
	s, err := NewSet(4, 512, 24)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.IncAt(i & 2047)
	}
}

func BenchmarkSetFlush(b *testing.B) {
	s, err := NewSet(4, 512, 24)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Flush()
	}
}
