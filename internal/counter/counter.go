// Package counter models the fixed-width saturating counter banks that back
// the paper's hash tables.
//
// The paper's configuration uses 2K entries of 3-byte counters (6 KB total,
// §7). A hardware counter cannot exceed its width, so counters saturate at
// 2^width − 1 rather than wrapping; wrapping would silently turn a heavy
// hitter into a light one, which no hardware designer would ship.
//
// # Data layout
//
// For widths up to 24 bits (the paper's default) a counter is packed into
// one uint32 word: the count in the low width bits and an epoch tag in the
// remaining high bits. The end-of-interval flush is then O(1) — bump the
// epoch, and every counter whose tag no longer matches reads as zero —
// instead of zeroing thousands of words per interval; a full sweep happens
// only when the tag wraps (every 2^(32−width) flushes). This mirrors the
// silicon trick of lazy SRAM clearing via a generation bit, and keeps the
// modeled 2K-counter store in 8 KB of contiguous memory instead of 16 KB
// of spread-out uint64 words. Widths above 24 bits fall back to a plain
// uint64 array with an eager flush.
//
// A multi-table profiler should allocate all its banks as one Set: the
// n tables then share a single contiguous backing array (per-bank offsets)
// and one epoch, so the per-event n-table loop walks one cache-friendly
// allocation and the interval flush is a single epoch bump.
package counter

import "fmt"

// DefaultWidth is the counter width used throughout the paper: 3 bytes.
const DefaultWidth = 24

// maxPackedWidth is the widest counter the packed representation holds:
// width bits of count must leave at least 8 bits of epoch tag in a uint32.
const maxPackedWidth = 24

// Set is n same-shaped banks of saturating counters in one contiguous
// backing array, flushed together by a shared epoch. Bank t's counter i
// lives at flat offset t*Size() + i.
type Set struct {
	tables int
	size   int
	width  uint
	max    uint64

	// Packed path (width <= maxPackedWidth).
	words    []uint32
	cmask    uint32 // low-width count mask
	epoch    uint32 // current generation; tags != epoch read as zero
	epochMax uint32 // largest representable tag; wrapping forces a sweep

	// Fallback path (width > maxPackedWidth): plain words, eager flush.
	wide []uint64
}

// NewSet returns tables banks of size counters each, width bits wide,
// sharing one backing array and one flush epoch. width must be in
// [1, 64]; tables and size must be positive.
func NewSet(tables, size int, width uint) (*Set, error) {
	if tables <= 0 {
		return nil, fmt.Errorf("counter: table count %d must be positive", tables)
	}
	if size <= 0 {
		return nil, fmt.Errorf("counter: bank size %d must be positive", size)
	}
	if width < 1 || width > 64 {
		return nil, fmt.Errorf("counter: width %d out of range [1,64]", width)
	}
	max := ^uint64(0)
	if width < 64 {
		max = 1<<width - 1
	}
	s := &Set{tables: tables, size: size, width: width, max: max}
	if width <= maxPackedWidth {
		s.words = make([]uint32, tables*size)
		s.cmask = uint32(1)<<width - 1
		s.epochMax = uint32(1)<<(32-width) - 1
	} else {
		s.wide = make([]uint64, tables*size)
	}
	return s, nil
}

// Tables returns the number of banks in the set.
func (s *Set) Tables() int { return s.tables }

// Size returns the number of counters per bank.
func (s *Set) Size() int { return s.size }

// Width returns the counter width in bits.
func (s *Set) Width() uint { return s.width }

// Max returns the saturation value, 2^width − 1.
func (s *Set) Max() uint64 { return s.max }

// Base returns the flat offset of bank t, for hot loops that precompute
// GetAt/IncAt indexes.
func (s *Set) Base(t int) int { return t * s.size }

// GetAt returns the value of the counter at flat offset j.
func (s *Set) GetAt(j int) uint64 {
	if s.wide != nil {
		return s.wide[j]
	}
	w := s.words[j]
	if w>>s.width != s.epoch {
		return 0
	}
	return uint64(w & s.cmask)
}

// IncAt increments the counter at flat offset j by 1, saturating at Max,
// and returns the new value.
func (s *Set) IncAt(j int) uint64 {
	if s.wide != nil {
		if s.wide[j] < s.max {
			s.wide[j]++
		}
		return s.wide[j]
	}
	w := s.words[j]
	var c uint32
	if w>>s.width == s.epoch {
		c = w & s.cmask
	}
	if uint64(c) < s.max {
		c++
	}
	s.words[j] = s.epoch<<s.width | c
	return uint64(c)
}

// AddAt increments the counter at flat offset j by delta, saturating at
// Max, and returns the new value.
func (s *Set) AddAt(j int, delta uint64) uint64 {
	if s.wide != nil {
		c := s.wide[j]
		if delta > s.max-c {
			c = s.max
		} else {
			c += delta
		}
		s.wide[j] = c
		return c
	}
	w := s.words[j]
	var c uint64
	if w>>s.width == s.epoch {
		c = uint64(w & s.cmask)
	}
	if delta > s.max-c {
		c = s.max
	} else {
		c += delta
	}
	s.words[j] = s.epoch<<s.width | uint32(c)
	return c
}

// ResetAt zeroes the counter at flat offset j.
func (s *Set) ResetAt(j int) {
	if s.wide != nil {
		s.wide[j] = 0
		return
	}
	s.words[j] = s.epoch << s.width
}

// Hot is a borrowed register-friendly view of a packed Set for specialized
// batch loops. GetAt/IncAt on the Set itself reload the epoch, width and
// mask through the pointer receiver on every call — and the compiler must
// assume any counter store may alias them — so an n-table hot loop pays
// those loads up to 3n times per event. A Hot value copies the invariants
// into locals once per batch; its methods are leaf functions over plain
// fields that inline across packages and keep everything in registers.
//
// A Hot view is valid until the next Flush (the epoch tag it carries goes
// stale). The batched observation loops take a fresh view per batch, and
// batches never span a Flush.
type Hot struct {
	// Words is the packed counter array: bank t's counter i at t*Size+i.
	Words []uint32
	// ETag is the current epoch tag pre-shifted into tag position: a word
	// w holds a live count iff w &^ CMask == ETag, and storing ETag | c
	// writes count c at the current generation.
	ETag uint32
	// CMask masks the count bits out of a word.
	CMask uint32
	// Max is the saturation value (fits in uint32: packed widths are <= 24).
	Max uint32
}

// Hot returns the packed hot-loop view, or ok == false on the wide
// (width > 24) fallback path, which keeps the pointer-receiver surface.
func (s *Set) Hot() (Hot, bool) {
	if s.wide != nil {
		return Hot{}, false
	}
	return Hot{
		Words: s.words,
		ETag:  s.epoch << s.width,
		CMask: s.cmask,
		Max:   uint32(s.max),
	}, true
}

// Get returns the value of the counter at flat offset j.
func (h Hot) Get(j int) uint32 {
	w := h.Words[j]
	if w&^h.CMask != h.ETag {
		return 0
	}
	return w & h.CMask
}

// Put stores count c at flat offset j under the current generation.
// c must not exceed Max.
func (h Hot) Put(j int, c uint32) { h.Words[j] = h.ETag | c }

// Inc increments the counter at flat offset j, saturating at Max, and
// returns the new value.
func (h Hot) Inc(j int) uint32 {
	c := h.Get(j)
	if c < h.Max {
		c++
	}
	h.Words[j] = h.ETag | c
	return c
}

// Bank geometry for the bucketed counter sweeps: the flat counter array is
// divided into contiguous banks of 2^BankShift counters, sized so one
// bank's words stay L1-resident while a sweep walks it — the software
// analog of the banked counter SRAMs that let the paper's hardware sustain
// one update per cycle without structural hazards. Staged indexes are
// counting-sorted by BankOf and each bank is swept in order, so counter
// traffic within a sweep is confined to one cache-sized window at a time.
const (
	// BankShift is log2 of the bank size in counters: 4096 counters of 4
	// packed bytes = 16 KB per bank.
	BankShift = 12
	// BankCounters is the number of counters per bank.
	BankCounters = 1 << BankShift
)

// NumBanks returns how many banks the set's flat array spans (the last one
// possibly partial). Small sets are a single bank.
func (s *Set) NumBanks() int {
	n := s.tables * s.size
	return (n + BankCounters - 1) >> BankShift
}

// BankOf returns the bank of flat offset j.
func BankOf(j uint32) uint32 { return j >> BankShift }

// Get returns the value of bank t's counter i.
func (s *Set) Get(t int, i uint32) uint64 { return s.GetAt(t*s.size + int(i)) }

// Inc increments bank t's counter i by 1, saturating at Max, and returns
// the new value.
func (s *Set) Inc(t int, i uint32) uint64 { return s.IncAt(t*s.size + int(i)) }

// Add increments bank t's counter i by delta, saturating at Max, and
// returns the new value.
func (s *Set) Add(t int, i uint32, delta uint64) uint64 {
	return s.AddAt(t*s.size+int(i), delta)
}

// Reset zeroes bank t's counter i.
func (s *Set) Reset(t int, i uint32) { s.ResetAt(t*s.size + int(i)) }

// Flush zeroes every counter of every bank (the end-of-interval hash-table
// flush). On the packed path this is O(1): the epoch advances and stale
// tags read as zero; only a wrapped tag forces a real sweep.
func (s *Set) Flush() {
	if s.wide != nil {
		clear(s.wide)
		return
	}
	if s.epoch == s.epochMax {
		clear(s.words)
		s.epoch = 0
		return
	}
	s.epoch++
}

// Bytes returns the storage the set occupies in a hardware realization:
// Tables × Size × width bits, rounded up to whole bytes per counter as the
// paper does (3-byte counters).
func (s *Set) Bytes() int {
	perCounter := (int(s.width) + 7) / 8
	return s.tables * s.size * perCounter
}

// Bank is a single bank of saturating counters of a fixed bit width: a
// one-table Set, kept as the standalone surface for callers that do not
// batch several tables together.
type Bank struct {
	set *Set
}

// NewBank returns a bank of size counters, each width bits wide.
// width must be in [1, 64]; size must be positive.
func NewBank(size int, width uint) (*Bank, error) {
	s, err := NewSet(1, size, width)
	if err != nil {
		return nil, err
	}
	return &Bank{set: s}, nil
}

// Len returns the number of counters in the bank.
func (b *Bank) Len() int { return b.set.size }

// Width returns the counter width in bits.
func (b *Bank) Width() uint { return b.set.width }

// Max returns the saturation value, 2^width − 1.
func (b *Bank) Max() uint64 { return b.set.max }

// Get returns the value of counter i.
func (b *Bank) Get(i uint32) uint64 { return b.set.GetAt(int(i)) }

// Inc increments counter i by 1, saturating at Max, and returns the new
// value.
func (b *Bank) Inc(i uint32) uint64 { return b.set.IncAt(int(i)) }

// Add increments counter i by delta, saturating at Max, and returns the new
// value.
func (b *Bank) Add(i uint32, delta uint64) uint64 { return b.set.AddAt(int(i), delta) }

// Reset zeroes counter i.
func (b *Bank) Reset(i uint32) { b.set.ResetAt(int(i)) }

// Flush zeroes every counter (the end-of-interval hash-table flush) —
// O(1) on the packed path, see Set.Flush.
func (b *Bank) Flush() { b.set.Flush() }

// Bytes returns the storage this bank occupies in a hardware realization:
// Len × width bits, rounded up to whole bytes per counter as the paper does
// (3-byte counters).
func (b *Bank) Bytes() int { return b.set.Bytes() }
