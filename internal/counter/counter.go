// Package counter models the fixed-width saturating counter banks that back
// the paper's hash tables.
//
// The paper's configuration uses 2K entries of 3-byte counters (6 KB total,
// §7). A hardware counter cannot exceed its width, so Bank saturates at
// 2^width − 1 rather than wrapping; wrapping would silently turn a heavy
// hitter into a light one, which no hardware designer would ship.
package counter

import "fmt"

// DefaultWidth is the counter width used throughout the paper: 3 bytes.
const DefaultWidth = 24

// Bank is a bank of saturating counters of a fixed bit width.
type Bank struct {
	counts []uint64
	max    uint64
	width  uint
}

// NewBank returns a bank of size counters, each width bits wide.
// width must be in [1, 64]; size must be positive.
func NewBank(size int, width uint) (*Bank, error) {
	if size <= 0 {
		return nil, fmt.Errorf("counter: bank size %d must be positive", size)
	}
	if width < 1 || width > 64 {
		return nil, fmt.Errorf("counter: width %d out of range [1,64]", width)
	}
	max := ^uint64(0)
	if width < 64 {
		max = 1<<width - 1
	}
	return &Bank{counts: make([]uint64, size), max: max, width: width}, nil
}

// Len returns the number of counters in the bank.
func (b *Bank) Len() int { return len(b.counts) }

// Width returns the counter width in bits.
func (b *Bank) Width() uint { return b.width }

// Max returns the saturation value, 2^width − 1.
func (b *Bank) Max() uint64 { return b.max }

// Get returns the value of counter i.
func (b *Bank) Get(i uint32) uint64 { return b.counts[i] }

// Inc increments counter i by 1, saturating at Max, and returns the new
// value.
func (b *Bank) Inc(i uint32) uint64 {
	if b.counts[i] < b.max {
		b.counts[i]++
	}
	return b.counts[i]
}

// Add increments counter i by delta, saturating at Max, and returns the new
// value.
func (b *Bank) Add(i uint32, delta uint64) uint64 {
	c := b.counts[i]
	if delta > b.max-c {
		c = b.max
	} else {
		c += delta
	}
	b.counts[i] = c
	return c
}

// Reset zeroes counter i.
func (b *Bank) Reset(i uint32) { b.counts[i] = 0 }

// Flush zeroes every counter (the end-of-interval hash-table flush).
func (b *Bank) Flush() {
	for i := range b.counts {
		b.counts[i] = 0
	}
}

// Bytes returns the storage this bank occupies in a hardware realization:
// Len × width bits, rounded up to whole bytes per counter as the paper does
// (3-byte counters).
func (b *Bank) Bytes() int {
	perCounter := (int(b.width) + 7) / 8
	return b.Len() * perCounter
}
