package counter

import (
	"testing"
	"testing/quick"
)

func TestNewBankValidation(t *testing.T) {
	if _, err := NewBank(0, 24); err == nil {
		t.Error("size 0 accepted")
	}
	if _, err := NewBank(-1, 24); err == nil {
		t.Error("negative size accepted")
	}
	if _, err := NewBank(8, 0); err == nil {
		t.Error("width 0 accepted")
	}
	if _, err := NewBank(8, 65); err == nil {
		t.Error("width 65 accepted")
	}
	b, err := NewBank(8, 64)
	if err != nil {
		t.Fatalf("width 64 rejected: %v", err)
	}
	if b.Max() != ^uint64(0) {
		t.Errorf("width-64 Max = %d", b.Max())
	}
}

func TestIncAndGet(t *testing.T) {
	b, _ := NewBank(4, 24)
	for i := 0; i < 5; i++ {
		b.Inc(2)
	}
	if got := b.Get(2); got != 5 {
		t.Fatalf("Get(2) = %d, want 5", got)
	}
	if got := b.Get(0); got != 0 {
		t.Fatalf("Get(0) = %d, want 0", got)
	}
}

func TestSaturation(t *testing.T) {
	b, _ := NewBank(1, 3) // max = 7
	for i := 0; i < 20; i++ {
		b.Inc(0)
	}
	if got := b.Get(0); got != 7 {
		t.Fatalf("3-bit counter = %d after 20 increments, want 7", got)
	}
}

func TestAddSaturates(t *testing.T) {
	b, _ := NewBank(1, 8) // max = 255
	if got := b.Add(0, 100); got != 100 {
		t.Fatalf("Add = %d, want 100", got)
	}
	if got := b.Add(0, 200); got != 255 {
		t.Fatalf("Add past max = %d, want 255", got)
	}
	if got := b.Add(0, 1); got != 255 {
		t.Fatalf("Add at max = %d, want 255", got)
	}
}

func TestAddNeverWraps(t *testing.T) {
	f := func(width8 uint8, delta uint64, pre uint16) bool {
		width := uint(width8%64) + 1
		b, err := NewBank(1, width)
		if err != nil {
			return false
		}
		b.Add(0, uint64(pre))
		before := b.Get(0)
		after := b.Add(0, delta)
		return after >= before && after <= b.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResetAndFlush(t *testing.T) {
	b, _ := NewBank(3, 24)
	b.Inc(0)
	b.Inc(1)
	b.Inc(2)
	b.Reset(1)
	if b.Get(0) != 1 || b.Get(1) != 0 || b.Get(2) != 1 {
		t.Fatal("Reset touched the wrong counters")
	}
	b.Flush()
	for i := uint32(0); i < 3; i++ {
		if b.Get(i) != 0 {
			t.Fatalf("counter %d nonzero after Flush", i)
		}
	}
}

func TestBytesMatchesPaper(t *testing.T) {
	// §7: "the size of the hash table was 6 Kilobytes (2K entries of
	// 3 byte counters)".
	b, _ := NewBank(2048, DefaultWidth)
	if got := b.Bytes(); got != 6*1024 {
		t.Fatalf("2K×24-bit bank = %d bytes, want 6144", got)
	}
}

func TestBytesRoundsUp(t *testing.T) {
	b, _ := NewBank(10, 9)
	if got := b.Bytes(); got != 20 {
		t.Fatalf("10×9-bit bank = %d bytes, want 20 (2 bytes/counter)", got)
	}
}

func BenchmarkInc(b *testing.B) {
	bank, _ := NewBank(2048, 24)
	for i := 0; i < b.N; i++ {
		bank.Inc(uint32(i) & 2047)
	}
}
