package hwprof_test

// Fleet aggregation across a daemon crash: two publishing daemons under
// one root aggregator, fed by marked sessions fanning one workload out by
// shard route. One daemon is journaled and killed mid-epoch — in-process
// kill -9 semantics, nothing flushed — then restarted on the same address
// with Recover. The recovered session re-pins its fleet epochs into the
// fresh feed, the client resumes where the stream broke, the root's
// subscriber reconnects, and the root's merged epochs must still be
// bit-identical to a single-engine run over the union stream.

import (
	"context"
	"net"
	"reflect"
	"testing"
	"time"

	"hwprof"
	"hwprof/internal/journal"
	"hwprof/internal/server"
	"hwprof/internal/shard"
)

// crashableDaemon runs a journaled publishing daemon meant to be killed:
// Serve's exit is delivered on the channel, not asserted in a cleanup.
func crashableDaemon(t *testing.T, cfg server.Config, addr string) (*server.Server, string, chan error) {
	t.Helper()
	srv := server.New(cfg)
	var ln net.Listener
	var err error
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebinding %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	return srv, ln.Addr().String(), done
}

func TestTreeRootBitIdenticalAcrossDaemonCrash(t *testing.T) {
	const (
		daemons = 2 // must divide the config's TotalEntries
		epochs  = 3
		seed    = 31
	)
	cfg := hwprof.BestMultiHash(hwprof.ShortIntervalConfig())
	cfg.IntervalLength = 1000
	cfg.Seed = seed

	dcfg := server.Config{
		Publish:       true,
		MachineID:     "m0",
		EpochLength:   1000,
		EpochDeadline: -1,
		JournalDir:    t.TempDir(),
		JournalSync:   journal.SyncBatch,
	}
	srv0, d0, done0 := crashableDaemon(t, dcfg, "127.0.0.1:0")
	d1 := startDaemon(t, "m1")
	root := startAggd(t, "root", []string{d0, d1})

	ctx := context.Background()
	sub, err := hwprof.Subscribe(ctx, root, hwprof.WithIntervalLength(1000))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	sessions := make([]*hwprof.RemoteSession, daemons)
	for i, addr := range []string{d0, d1} {
		s, err := hwprof.Connect(ctx, addr,
			hwprof.WithConfig(cfg),
			hwprof.WithShards(daemons),
			hwprof.WithMarks(),
			hwprof.WithBatchSize(100),
			hwprof.WithBackoff(5*time.Millisecond, 50*time.Millisecond),
		)
		if err != nil {
			t.Fatalf("connect %d: %v", i, err)
		}
		sessions[i] = s
	}

	src, err := hwprof.NewWorkload("gcc", hwprof.KindValue, seed)
	if err != nil {
		t.Fatal(err)
	}
	var sent0 uint64 // events routed to the daemon that will crash
	observe := func(n int) {
		t.Helper()
		for k := 0; k < n; k++ {
			tp, ok := src.Next()
			if !ok {
				t.Fatal("workload ended early")
			}
			i := shard.RouteHash(tp) % daemons
			if err := sessions[i].Observe(tp); err != nil {
				t.Fatalf("observe on %d: %v", i, err)
			}
			if i == 0 {
				sent0++
			}
		}
	}
	mark := func() {
		t.Helper()
		for i, s := range sessions {
			if err := s.Mark(); err != nil {
				t.Fatalf("mark on %d: %v", i, err)
			}
		}
	}

	// Epoch 0 completes, then the crash lands mid-epoch 1: 400 events in,
	// boundary not yet placed.
	observe(1000)
	mark()
	observe(400)
	for i, s := range sessions {
		if err := s.Flush(); err != nil {
			t.Fatalf("flush %d: %v", i, err)
		}
	}
	waitFor2 := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if cond() {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", what)
	}
	waitFor2("flushed events to reach the doomed daemon", func() bool {
		return srv0.Metrics().EventsTotal.Load() >= sent0
	})

	srv0.Kill()
	if err := <-done0; err != nil {
		t.Fatalf("killed daemon's Serve: %v", err)
	}

	srv2, _, done2 := crashableDaemon(t, dcfg, d0)
	recovered, err := srv2.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if recovered != 1 {
		t.Fatalf("recovered %d sessions, want 1", recovered)
	}
	t.Cleanup(func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv2.Shutdown(sctx); err != nil {
			t.Errorf("restarted daemon shutdown: %v", err)
		}
		if err := <-done2; err != nil {
			t.Errorf("restarted daemon serve: %v", err)
		}
	})

	// Finish epoch 1 and run epoch 2 through the restarted daemon; the
	// client's next write fails over to a Resume against the recovered
	// tombstone.
	observe(600)
	mark()
	observe(1000)
	mark()
	for i, s := range sessions {
		if _, err := s.Drain(); err != nil {
			t.Fatalf("drain %d: %v", i, err)
		}
	}
	if sessions[0].Reconnects() == 0 {
		t.Fatal("the crash never forced a reconnect: test exercised no recovery")
	}
	if got := srv2.Metrics().JournalRecovered.Load(); got != 1 {
		t.Fatalf("journal_recovered_sessions = %d, want 1", got)
	}

	// The reference: the same union stream through one local engine.
	refSrc, err := hwprof.NewWorkload("gcc", hwprof.KindValue, seed)
	if err != nil {
		t.Fatal(err)
	}
	var ref []map[hwprof.Tuple]uint64
	n, err := hwprof.Profile(ctx, hwprof.Limit(refSrc, epochs*1000),
		hwprof.WithConfig(cfg),
		hwprof.WithShards(daemons),
		hwprof.WithoutOracle(),
		hwprof.OnInterval(func(_ int, _, hw map[hwprof.Tuple]uint64) { ref = append(ref, hw) }))
	if err != nil || n != epochs {
		t.Fatalf("local union run: %d intervals, err %v", n, err)
	}

	for e := 0; e < epochs; e++ {
		select {
		case ep, ok := <-sub.C:
			if !ok {
				t.Fatalf("subscription closed at epoch %d: %v", e, sub.Err())
			}
			if ep.Epoch != uint64(e) || ep.Partial || ep.Source != "root" {
				t.Fatalf("root epoch = %+v, want complete epoch %d", ep, e)
			}
			if !reflect.DeepEqual(ep.Counts, ref[e]) {
				t.Fatalf("root epoch %d diverges from the single-engine union run", e)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("timed out waiting for root epoch %d", e)
		}
	}
	if sub.Gaps() != 0 {
		t.Fatalf("gaps = %d, want 0", sub.Gaps())
	}
}
