package hwprof

import (
	"context"
	"sync"
	"sync/atomic"

	"hwprof/internal/agg"
)

// EpochProfile is one closed fleet epoch delivered by an epoch publisher —
// a profiled daemon with publishing enabled, or an aggd merging a subtree.
// Epochs are identified by interval index, never wall clock; the counts
// are the merged profile of every member that reported the interval.
type EpochProfile struct {
	// Source is the publisher's machine or aggregator ID.
	Source string

	// Epoch is the interval index the merged counts cover.
	Epoch uint64

	// Partial reports that at least one expected member's counts are
	// absent — a straggler deadline fired, an open-epoch window
	// overflowed, or a subtree's own epoch was partial. Missing names
	// them; at the tree root they name the actual absent leaves.
	Partial bool

	// Children is how many direct members reported into this epoch at the
	// publisher.
	Children uint64

	// Missing lists the absent members, sorted.
	Missing []string

	// Counts is the merged profile.
	Counts map[Tuple]uint64
}

// Subscription is one attached epoch subscription. Read C until it closes,
// then check Err: nil means the subscription was closed deliberately;
// anything else is the terminal link failure. Epochs arrive strictly in
// index order; spans the publisher no longer retained when the link
// (re)attached are skipped, counted by Gaps.
type Subscription struct {
	// C delivers closed epochs in order until the subscription ends.
	C <-chan EpochProfile

	ch      chan EpochProfile
	sub     *agg.Subscriber
	done    chan struct{} // closed by Close; unblocks the delivery goroutine
	runDone chan struct{} // closed when the link goroutine has exited
	once    sync.Once

	gaps atomic.Uint64
	err  error // link verdict; written before runDone closes
}

// subHandler bridges the link goroutine's in-order delivery into the
// subscription channel, giving up when the subscription is closed.
type subHandler struct{ s *Subscription }

func (h subHandler) HandleEpoch(ep agg.Epoch) {
	select {
	case h.s.ch <- EpochProfile{
		Source:   ep.Source,
		Epoch:    ep.Epoch,
		Partial:  ep.Partial,
		Children: ep.Children,
		Missing:  ep.Missing,
		Counts:   ep.Counts,
	}:
	case <-h.s.done:
	}
}

func (h subHandler) HandleGap(from, to uint64) { h.s.gaps.Add(to - from) }

// Subscribe attaches to the epoch publisher at addr and delivers its
// closed epochs on the returned subscription's channel, starting at
// WithStartEpoch (0 by default — earlier epochs already evicted from the
// publisher's retention ring are skipped and counted as a gap).
//
// The link reuses the remote options vocabulary: WithDialTimeout,
// WithBackoff, WithMaxAttempts, WithReadTimeout / WithWriteTimeout,
// WithDialer. A broken link is redialed under jittered exponential backoff
// and the subscription resumed at the next epoch needed; WithoutReconnect
// makes the first failure terminal instead. WithIntervalLength, when
// given, is validated against the publisher's advertised epoch length —
// a mismatch is a terminal error, because merging misaligned epochs would
// be silently wrong.
//
// ctx governs the subscription's lifetime: cancelling it ends the
// subscription like Close. The first attach happens asynchronously; a
// publisher that refuses the subscription surfaces through Err after C
// closes.
func Subscribe(ctx context.Context, addr string, opts ...Option) (*Subscription, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o := buildOptions(opts)
	maxAttempts := o.remote.MaxAttempts
	if o.reconnectSet && !o.remote.Reconnect {
		maxAttempts = 1
	}
	s := &Subscription{
		ch:      make(chan EpochProfile, agg.DefaultSubBuffer),
		done:    make(chan struct{}),
		runDone: make(chan struct{}),
	}
	s.C = s.ch
	s.sub = agg.NewSubscriber(agg.SubscriberConfig{
		Addr:         addr,
		EpochLength:  o.run.IntervalLength,
		Start:        o.start,
		DialTimeout:  o.remote.DialTimeout,
		BackoffBase:  o.remote.BackoffBase,
		BackoffMax:   o.remote.BackoffMax,
		MaxAttempts:  maxAttempts,
		ReadTimeout:  o.remote.ReadTimeout,
		WriteTimeout: o.remote.WriteTimeout,
		Dialer:       o.remote.Dialer,
	}, subHandler{s})
	go func() {
		defer close(s.runDone)
		s.err = s.sub.Run()
		close(s.ch)
	}()
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				s.Close()
			case <-s.runDone:
			}
		}()
	}
	return s, nil
}

// Gaps returns the number of epochs skipped because the publisher no
// longer retained them when the link (re)attached.
func (s *Subscription) Gaps() uint64 { return s.gaps.Load() }

// Err returns the subscription's terminal link error, nil if it was ended
// by Close (or ctx). Valid once C has closed.
func (s *Subscription) Err() error {
	select {
	case <-s.runDone:
		return s.err
	default:
		return nil
	}
}

// Close ends the subscription: the link is torn down, C closes, Err stays
// nil (unless the link had already failed). Safe to call more than once.
func (s *Subscription) Close() error {
	s.once.Do(func() {
		close(s.done)
		s.sub.Close()
	})
	<-s.runDone
	return nil
}
