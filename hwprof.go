// Package hwprof is a Go reproduction of "Catching Accurate Profiles in
// Hardware" (Narayanasamy, Sherwood, Sair, Calder, Varghese — HPCA 2003):
// the Multi-Hash interval-based hardware profiling architecture, its
// single-hash ancestor, the stratified-sampling baseline, and the
// workload/instrumentation substrates needed to evaluate them.
//
// The profiler finds the frequently occurring events ("candidate tuples")
// of each fixed-length interval of a profiling-event stream, entirely in
// simulated hardware: tagless hash tables of saturating counters filter
// the stream, and a small associative accumulator table counts the
// candidates exactly.
//
// Quick start:
//
//	cfg := hwprof.BestMultiHash(hwprof.ShortIntervalConfig())
//	p, err := hwprof.New(cfg)
//	if err != nil { ... }
//	for _, t := range tuples {
//	    p.Observe(t)
//	}
//	profile := p.EndInterval() // map[Tuple]count for the interval
//
// For throughput, drive a stream through the unified entry point —
//
//	n, err := hwprof.Profile(ctx, src,
//	    hwprof.WithConfig(cfg), hwprof.WithShards(4), hwprof.OnInterval(fn))
//
// which builds a sharded concurrent engine and preserves exact interval
// semantics. Connect opens a session with a profiled daemon the same way,
// and Subscribe attaches to an epoch publisher (a publishing daemon or an
// aggd fleet aggregator) for merged fleet profiles. The legacy Run /
// RunWith / RunParallel / Dial forms remain as deprecated wrappers.
//
// See the examples/ directory for complete programs, DESIGN.md for the
// system inventory and EXPERIMENTS.md for the paper-vs-measured record.
package hwprof

import (
	"context"
	"fmt"
	"io"

	"hwprof/internal/adaptive"
	"hwprof/internal/core"
	"hwprof/internal/event"
	"hwprof/internal/hwmodel"
	"hwprof/internal/metrics"
	"hwprof/internal/shard"
	"hwprof/internal/synth"
	"hwprof/internal/trace"
	"hwprof/internal/vm"
	"hwprof/internal/vm/progs"
)

// Tuple uniquely names one profiling event: a pair such as
// <loadPC, value> or <branchPC, targetPC>.
type Tuple = event.Tuple

// Kind labels what a tuple's two halves mean.
type Kind = event.Kind

// Tuple kinds.
const (
	KindValue   = event.KindValue
	KindEdge    = event.KindEdge
	KindGeneric = event.KindGeneric
)

// Source is a stream of profiling events. A stream ends either cleanly or
// with a failure; Err distinguishes the two, and every driver in this
// package checks it when a stream ends.
type Source = event.Source

// Nexter is the minimal error-free stream surface: Next alone, no Err.
// Lift one into a Source with FromNexter.
type Nexter = event.Nexter

// FromNexter adapts an error-free event producer into a Source whose Err
// is permanently nil. Producers that already satisfy Source are returned
// unchanged.
func FromNexter(n Nexter) Source { return event.FromNexter(n) }

// BatchSource is the bulk counterpart of Source: NextBatch fills a slice
// with consecutive tuples and returns how many were written (0 means the
// stream is exhausted).
type BatchSource = event.BatchSource

// Batched returns a BatchSource view of src: the source itself when it
// already implements BatchSource, an adapter that loops Next otherwise.
func Batched(src Source) BatchSource { return event.Batched(src) }

// NewSliceSource returns a Source/BatchSource that yields the given tuples
// in order. The slice is not copied.
func NewSliceSource(tuples []Tuple) *event.SliceSource {
	return event.NewSliceSource(tuples)
}

// Config describes a profiler configuration; see the field documentation
// in the core package and the presets below.
type Config = core.Config

// Profiler is the Multi-Hash profiling architecture (the single-hash
// architecture when Config.NumTables == 1).
type Profiler = core.MultiHash

// StreamProfiler is the interface every profiler in this module satisfies:
// per-event observation plus interval snapshots. *Profiler,
// *ShardedProfiler and *Perfect all implement it (and the batch fast path
// of core.BatchProfiler besides).
type StreamProfiler = core.Profiler

// ShardedProfiler is the sharded concurrent engine: N MultiHash shards fed
// by per-shard goroutines behind the same Observe / ObserveBatch /
// EndInterval surface as Profiler. See internal/shard for the equivalence
// argument.
//
// Shut it down with Close (graceful: queued batches drain first) or Drain
// (same, but the unfinished interval's profile is returned). A panic in a
// shard worker is contained and surfaced through Err rather than crashing
// the process, and use after Close records ErrClosed instead of
// panicking.
type ShardedProfiler = shard.Profiler

// ErrClosed is reported (via ShardedProfiler.Err or Drain) when a sharded
// engine is used after Close.
var ErrClosed = shard.ErrClosed

// ErrTraceTruncated matches (via errors.Is) trace-reader failures caused
// by a stream that ends before its format allows — a cut-off file or
// interrupted write.
var ErrTraceTruncated = trace.ErrTruncated

// ErrTraceCorrupt matches (via errors.Is) trace-reader failures caused by
// inconsistent bytes: checksum mismatches, record-count mismatches, or
// undecodable framing.
var ErrTraceCorrupt = trace.ErrCorrupt

// ShardedConfig describes a sharded engine: the aggregate profiler
// configuration plus shard count and batching knobs.
type ShardedConfig = shard.Config

// Perfect is the oracle profiler used for error evaluation.
type Perfect = core.Perfect

// IntervalError is the per-interval error breakdown of the paper's §5.5
// methodology.
type IntervalError = metrics.Interval

// ErrorSummary aggregates interval errors over a run.
type ErrorSummary = metrics.Summary

// New builds a profiler from cfg.
func New(cfg Config) (*Profiler, error) { return core.NewMultiHash(cfg) }

// NewSharded builds a sharded concurrent engine that subdivides cfg's
// storage across the given number of shards (cfg.TotalEntries must divide
// evenly). The result profiles concurrently but reports intervals exactly
// like a sequential ensemble of the split configurations; Close it when
// done.
func NewSharded(cfg Config, shards int) (*ShardedProfiler, error) {
	return shard.New(shard.Config{Core: cfg, NumShards: shards})
}

// NewShardedFrom builds a sharded engine with explicit batching knobs.
func NewShardedFrom(cfg ShardedConfig) (*ShardedProfiler, error) {
	return shard.New(cfg)
}

// NewPerfect returns an oracle profiler.
func NewPerfect() *Perfect { return core.NewPerfect() }

// ShortIntervalConfig is the paper's 10,000-event / 1%-threshold regime.
func ShortIntervalConfig() Config { return core.ShortIntervalConfig() }

// LongIntervalConfig is the paper's 1,000,000-event / 0.1%-threshold
// regime.
func LongIntervalConfig() Config { return core.LongIntervalConfig() }

// BestSingleHash configures base as the paper's best single-hash profiler
// (resetting + retaining).
func BestSingleHash(base Config) Config { return core.BestSingleHash(base) }

// BestMultiHash configures base as the paper's best multi-hash profiler
// (4 tables, conservative update, no resetting, retaining).
func BestMultiHash(base Config) Config { return core.BestMultiHash(base) }

// IntervalFunc receives, for each completed interval, the interval's index
// (from 0), the perfect profile (nil when the oracle is disabled) and the
// hardware profile. The maps are owned by the callee and remain valid
// after the callback returns.
type IntervalFunc = core.IntervalFunc

// RunConfig carries the knobs of the batched drivers: the interval length,
// the batch size of the source→profiler hot loop, and — for RunParallel's
// convenience constructor path — the shard count.
type RunConfig struct {
	// IntervalLength is the number of events per profile interval.
	IntervalLength uint64

	// BatchSize is the number of tuples moved per batch; 0 selects
	// event.DefaultBatchSize. Interval boundaries are placed identically
	// at every batch size.
	BatchSize int

	// Shards is the shard count used when a driver builds its own
	// ShardedProfiler; 0 or 1 means sequential.
	Shards int

	// NoPerfect disables the perfect (oracle) profiler; the callback then
	// receives a nil perfect map. Throughput-oriented runs want this: the
	// oracle's map insert per event costs more than the whole hardware
	// model.
	NoPerfect bool

	// ReuseProfiles recycles the interval-profile maps back into the
	// profilers after each callback, making interval boundaries
	// allocation-free in steady state. The callback must then finish with
	// the maps before returning — they are invalid afterwards. Runs with a
	// nil callback always recycle; the maps are never observed.
	ReuseProfiles bool
}

// Profile is the unified local entry point: it feeds src through a
// profiling engine on the batched fast path, invoking the OnInterval
// callback at each boundary, and returns the number of complete intervals
// processed. Cancellation or deadline expiry on ctx stops the run between
// batches and returns ctx.Err() alongside the intervals completed.
//
// By default Profile builds its own engine — BestMultiHash over the
// paper's short-interval regime, or the configuration given WithConfig,
// sharded per WithShards — and shuts it down gracefully before returning
// (queued batches drain first). With WithEngine it runs the caller's
// engine instead — any StreamProfiler — and leaves it open, so the caller
// can Drain the partial interval or keep using it.
//
// The returned error reflects the stream and the engine, not just the
// configuration: a source that fails mid-stream (src.Err() != nil, e.g. a
// truncated trace) and a sharded engine that fails terminally (a contained
// worker panic) both surface here together with the count of intervals
// completed before the failure.
func Profile(ctx context.Context, src Source, opts ...Option) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o := buildOptions(opts)
	if o.eng != nil {
		return core.RunBatchedContext(ctx, src, o.eng, core.RunConfig{
			IntervalLength: o.run.IntervalLength,
			BatchSize:      o.run.BatchSize,
			NoPerfect:      o.run.NoPerfect,
			ReuseProfiles:  o.run.ReuseProfiles,
		}, o.onInterval)
	}
	cfg := BestMultiHash(ShortIntervalConfig())
	if o.cfg != nil {
		cfg = *o.cfg
	}
	rc := o.run
	if !o.legacy && rc.IntervalLength == 0 {
		rc.IntervalLength = cfg.IntervalLength
	}
	shards := rc.Shards
	if shards == 0 {
		shards = 1
	}
	sp, err := shard.New(shard.Config{Core: cfg, NumShards: shards, BatchSize: rc.BatchSize})
	if err != nil {
		return 0, err
	}
	n, err := core.RunBatchedContext(ctx, src, sp, core.RunConfig{
		IntervalLength: rc.IntervalLength,
		BatchSize:      rc.BatchSize,
		NoPerfect:      rc.NoPerfect,
		ReuseProfiles:  rc.ReuseProfiles,
	}, o.onInterval)
	if _, derr := sp.Drain(); err == nil && derr != nil {
		err = derr
	}
	return n, err
}

// RunWith feeds src through hw on the batched fast path.
//
// Deprecated: use Profile with WithEngine — RunWith is a thin wrapper over
// it and keeps its exact semantics:
//
//	Profile(ctx, src, WithEngine(hw), WithIntervalLength(n), OnInterval(fn))
func RunWith(src Source, hw StreamProfiler, cfg RunConfig, fn IntervalFunc) (int, error) {
	return RunWithContext(context.Background(), src, hw, cfg, fn)
}

// RunWithContext is RunWith under a context.
//
// Deprecated: use Profile with WithEngine; see RunWith.
func RunWithContext(ctx context.Context, src Source, hw StreamProfiler, cfg RunConfig, fn IntervalFunc) (int, error) {
	return Profile(ctx, src, WithEngine(hw), withRunConfig(cfg), OnInterval(fn))
}

// RunParallel builds a sharded engine from cfg and rc, streams src through
// it, and closes it before returning.
//
// Deprecated: use Profile — it builds (and gracefully shuts down) the
// sharded engine itself and keeps RunParallel's exact semantics:
//
//	Profile(ctx, src, WithConfig(cfg), WithShards(n), OnInterval(fn))
func RunParallel(src Source, cfg Config, rc RunConfig, fn IntervalFunc) (int, error) {
	return RunParallelContext(context.Background(), src, cfg, rc, fn)
}

// RunParallelContext is RunParallel under a context.
//
// Deprecated: use Profile; see RunParallel.
func RunParallelContext(ctx context.Context, src Source, cfg Config, rc RunConfig, fn IntervalFunc) (int, error) {
	return Profile(ctx, src, WithConfig(cfg), withRunConfig(rc), OnInterval(fn))
}

// Run feeds src through hw and a perfect profiler, invoking fn at each
// interval boundary with the exact and hardware profiles, and returns the
// number of complete intervals processed.
//
// Deprecated: Run is the legacy positional form; use Profile with
// WithEngine. Run is a thin wrapper and keeps its exact semantics.
func Run(src Source, hw *Profiler, intervalLength uint64, fn func(index int, perfect, hardware map[Tuple]uint64)) (int, error) {
	var cb core.IntervalFunc
	if fn != nil {
		cb = func(i int, p, h map[event.Tuple]uint64) { fn(i, p, h) }
	}
	return RunWith(src, hw, RunConfig{IntervalLength: intervalLength}, cb)
}

// EvalInterval computes the paper's error breakdown for one interval.
func EvalInterval(perfect, hardware map[Tuple]uint64, thresholdCount uint64) IntervalError {
	return metrics.EvalInterval(perfect, hardware, thresholdCount)
}

// Workloads returns the names of the built-in synthetic benchmark analogs
// (burg, deltablue, gcc, go, li, m88ksim, sis, vortex).
func Workloads() []string { return synth.Benchmarks() }

// NewWorkload returns an unbounded deterministic event stream with the
// statistical structure of the named benchmark analog.
func NewWorkload(name string, kind Kind, seed uint64) (Source, error) {
	return synth.NewBenchmark(name, kind, seed)
}

// Limit bounds a source to at most n events.
func Limit(src Source, n uint64) Source { return event.Limit(src, n) }

// Combine names an event of more than two variables as a Tuple (§3's
// multi-variable extension); two-variable calls keep their literal names.
func Combine(vars ...uint64) Tuple { return event.Combine(vars...) }

// Interleave merges sources by round-robin with a fixed per-turn quantum,
// modeling a multiprogrammed machine: the profiler is OS-independent and
// simply profiles the merged stream.
func Interleave(quantum uint64, sources ...Source) (Source, error) {
	return synth.Interleave(quantum, sources...)
}

// Programs returns the names of the built-in VM programs whose
// instrumented execution can drive the profiler with genuinely
// program-generated streams.
func Programs() []string {
	all := progs.All()
	names := make([]string, len(all))
	for i, p := range all {
		names[i] = p.Name
	}
	return names
}

// NewProgramSource assembles and instruments the named VM program,
// returning an event stream of the given kind. With loop set the program
// restarts on halt, yielding an unbounded stream.
func NewProgramSource(name string, kind Kind, loop bool) (Source, error) {
	p, err := progs.ByName(name)
	if err != nil {
		return nil, err
	}
	m, err := p.NewMachine()
	if err != nil {
		return nil, err
	}
	src, err := vm.NewEventSource(m, kind)
	if err != nil {
		return nil, err
	}
	src.Loop = loop
	return src, nil
}

// WriteTrace streams src into w in the repository's binary trace format,
// returning the number of tuples written. max bounds the tuple count;
// max == 0 means no limit, writing until src is exhausted — beware that
// many of this module's sources (workload generators, looped programs) are
// unbounded, so an unlimited WriteTrace over them never returns.
func WriteTrace(w io.Writer, kind Kind, src Source, max uint64) (uint64, error) {
	tw, err := trace.NewWriter(w, kind)
	if err != nil {
		return 0, err
	}
	for max == 0 || tw.Count() < max {
		tp, ok := src.Next()
		if !ok {
			// A failed source must not leave behind a trace that reads back
			// as complete: report the failure instead of sealing the file.
			if err := src.Err(); err != nil {
				return tw.Count(), fmt.Errorf("hwprof: source failed after %d events: %w", tw.Count(), err)
			}
			break
		}
		if err := tw.Write(tp); err != nil {
			return tw.Count(), err
		}
	}
	return tw.Count(), tw.Close()
}

// OpenTrace wraps a binary trace stream as a Source. The returned reader
// also exposes the trace's tuple kind. When the stream ends, the reader's
// Err method distinguishes a cleanly finished trace (nil) from truncation
// or corruption (ErrTraceTruncated / ErrTraceCorrupt); the Run drivers
// check it automatically and return the failure.
func OpenTrace(r io.Reader) (*trace.Reader, error) { return trace.NewReader(r) }

// AdaptiveConfig parameterizes the adaptive interval-length extension
// (§5.6.1); see the adaptive package for field documentation.
type AdaptiveConfig = adaptive.Config

// AdaptiveProfiler wraps the multi-hash profiler with a controller that
// adapts the interval length to the workload's phase behaviour.
type AdaptiveProfiler = adaptive.Profiler

// AdaptiveBoundary describes one completed adaptive interval.
type AdaptiveBoundary = adaptive.Boundary

// NewAdaptive builds an adaptive profiler.
func NewAdaptive(cfg AdaptiveConfig) (*AdaptiveProfiler, error) {
	return adaptive.New(cfg)
}

// StorageBytes returns the modeled hardware storage (hash tables plus
// accumulator) of a configuration, as accounted in the paper's §7.
func StorageBytes(cfg Config) (int, error) {
	a, err := hwmodel.Of(cfg)
	if err != nil {
		return 0, err
	}
	return a.Total(), nil
}
