// Delinquent-load profiling: run a pointer-chasing program against a
// small data cache, feed every miss to the multi-hash profiler as a
// <loadPC, lineAddr> event, and report which load instructions a
// prefetcher should target — the paper's first motivating optimization
// (§2, "Cache Replacement and Prefetching"), plus a problematic-branch
// pass for its fourth (§2, "Multiple Path Execution").
package main

import (
	"fmt"
	"log"

	"hwprof"
	"hwprof/internal/bpred"
	"hwprof/internal/cache"
	"hwprof/internal/core"
	"hwprof/internal/opt"
	"hwprof/internal/vm/progs"
)

func main() {
	profilerCfg := core.BestMultiHash(core.Config{
		IntervalLength:   10_000,
		ThresholdPercent: 1,
		TotalEntries:     2048,
		NumTables:        4,
		CounterWidth:     24,
		Seed:             3,
	})

	fmt.Println("== delinquent loads (treeins vs a 512-byte, 2-way cache) ==")
	prog, err := progs.ByName("treeins")
	if err != nil {
		log.Fatal(err)
	}
	m, err := prog.NewMachine()
	if err != nil {
		log.Fatal(err)
	}
	c, err := cache.New(cache.Config{SizeBytes: 512, Ways: 2, LineBytes: 32})
	if err != nil {
		log.Fatal(err)
	}
	p, err := core.NewMultiHash(profilerCfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := opt.FindDelinquentLoads(m, c, p, 50_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cache: %d accesses, %d misses (%.1f%%)\n",
		res.Accesses, res.Misses, 100*float64(res.Misses)/float64(res.Accesses))
	fmt.Printf("profiler identified %d delinquent load PCs covering %.0f%% of all misses:\n",
		len(res.ProfiledPCs), res.Coverage*100)
	for _, pc := range res.ProfiledPCs {
		fmt.Printf("  load at %#x\n", pc)
	}

	fmt.Println("\n== problematic branches (crcbits vs a 2-bit bimodal predictor) ==")
	prog, err = progs.ByName("crcbits")
	if err != nil {
		log.Fatal(err)
	}
	m, err = prog.NewMachine()
	if err != nil {
		log.Fatal(err)
	}
	pred, err := bpred.NewTwoBit(1024)
	if err != nil {
		log.Fatal(err)
	}
	p, err = core.NewMultiHash(profilerCfg)
	if err != nil {
		log.Fatal(err)
	}
	bres, err := opt.FindProblematicBranches(m, pred, p, 50_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predictor: %d branches, %d mispredicts (%.1f%%)\n",
		bres.Branches, bres.Mispredicts, 100*bpredRate(bres))
	fmt.Printf("profiler identified %d problematic branch PCs covering %.0f%% of mispredictions:\n",
		len(bres.ProfiledPCs), bres.Coverage*100)
	for _, pc := range bres.ProfiledPCs {
		fmt.Printf("  branch at %#x\n", pc)
	}
	fmt.Println("\nthese are the branches a dual-path-execution scheme should fork on,")
	fmt.Printf("found with %d bytes of profiling hardware\n", storage(profilerCfg))
}

func bpredRate(r opt.ProblematicResult) float64 {
	if r.Branches == 0 {
		return 0
	}
	return float64(r.Mispredicts) / float64(r.Branches)
}

func storage(cfg core.Config) int {
	n, err := hwprof.StorageBytes(cfg)
	if err != nil {
		return 0
	}
	return n
}
