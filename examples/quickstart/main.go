// Quickstart: build the paper's best multi-hash profiler, stream one
// profile interval of a synthetic workload through it, and print the
// candidate tuples it caught — entirely in (simulated) hardware, no
// software profile aggregation.
package main

import (
	"fmt"
	"log"
	"sort"

	"hwprof"
)

func main() {
	// The paper's responsive regime: 10,000-event intervals, tuples
	// occurring ≥ 1% of the interval are candidates. BestMultiHash gives
	// 4 hash tables with conservative update and retaining over 2K
	// three-byte counters (~7 KB of "silicon").
	cfg := hwprof.BestMultiHash(hwprof.ShortIntervalConfig())
	profiler, err := hwprof.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// A deterministic value-profiling stream with the statistical shape
	// of SPEC gcc: a small hot set, thousands of rarely repeating noise
	// tuples.
	workload, err := hwprof.NewWorkload("gcc", hwprof.KindValue, 42)
	if err != nil {
		log.Fatal(err)
	}

	for i := uint64(0); i < cfg.IntervalLength; i++ {
		t, _ := workload.Next()
		profiler.Observe(t)
	}
	profile := profiler.EndInterval()

	// Everything at or above the candidate threshold was caught with an
	// exact count from its promotion point onward.
	type cand struct {
		t hwprof.Tuple
		n uint64
	}
	var cands []cand
	for t, n := range profile {
		if n >= cfg.ThresholdCount() {
			cands = append(cands, cand{t, n})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].n > cands[j].n })

	fmt.Printf("caught %d candidate tuples (threshold %d occurrences):\n",
		len(cands), cfg.ThresholdCount())
	for _, c := range cands {
		fmt.Printf("  load pc %#x value %#10x  ×%d\n", c.t.A, c.t.B, c.n)
	}
}
