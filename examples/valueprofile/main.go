// Value profiling of a real (interpreted) program: run the VM's string-
// hashing benchmark under the multi-hash profiler and report which load
// instructions are dominated by which values — the information a
// value-specialization or frequent-value-cache optimization needs (paper
// §2, "Value based optimizations").
package main

import (
	"fmt"
	"log"
	"sort"

	"hwprof"
)

func main() {
	// Short intervals so the profile tracks the program closely.
	cfg := hwprof.BestMultiHash(hwprof.ShortIntervalConfig())
	cfg.IntervalLength = 5_000
	profiler, err := hwprof.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Each ld instruction emits a <loadPC, value> tuple; loop the program
	// to cover several intervals.
	src, err := hwprof.NewProgramSource("strhash", hwprof.KindValue, true)
	if err != nil {
		log.Fatal(err)
	}

	// Aggregate the per-interval hardware profiles: for every load PC,
	// how much of its profiled traffic is one dominant value?
	perPC := map[uint64]map[uint64]uint64{}
	intervals, err := hwprof.Run(hwprof.Limit(src, cfg.IntervalLength*10), profiler,
		cfg.IntervalLength, func(_ int, _, hardware map[hwprof.Tuple]uint64) {
			for t, n := range hardware {
				if n < cfg.ThresholdCount() {
					continue
				}
				if perPC[t.A] == nil {
					perPC[t.A] = map[uint64]uint64{}
				}
				perPC[t.A][t.B] += n
			}
		})
	if err != nil {
		log.Fatal(err)
	}

	pcs := make([]uint64, 0, len(perPC))
	for pc := range perPC {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })

	fmt.Printf("value-specialization candidates over %d intervals:\n", intervals)
	for _, pc := range pcs {
		var total, best uint64
		var bestVal uint64
		for v, n := range perPC[pc] {
			total += n
			if n > best {
				best, bestVal = n, v
			}
		}
		fmt.Printf("  load at %#x: top value %6d covers %3.0f%% of %d profiled loads\n",
			pc, int64(bestVal), 100*float64(best)/float64(total), total)
	}
	fmt.Println("\nloads dominated by one value are candidates for value")
	fmt.Println("specialization or frequent-value compression (Zhang et al.).")
}
