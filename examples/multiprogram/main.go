// Multiprogrammed profiling — the paper's OS-independence claim in
// action. Two "processes" (the li and m88ksim workload analogs) share the
// machine, context-switching every 1,000 events. The profiler knows
// nothing about processes, address spaces or the scheduler: it profiles
// the merged stream and still reports each interval's heavy hitters with
// near-zero error, because the accumulator tracks tuples, not software
// contexts.
package main

import (
	"fmt"
	"log"

	"hwprof"
)

func main() {
	procA, err := hwprof.NewWorkload("li", hwprof.KindValue, 1)
	if err != nil {
		log.Fatal(err)
	}
	procB, err := hwprof.NewWorkload("m88ksim", hwprof.KindValue, 2)
	if err != nil {
		log.Fatal(err)
	}
	merged, err := hwprof.Interleave(1_000, procA, procB)
	if err != nil {
		log.Fatal(err)
	}

	cfg := hwprof.BestMultiHash(hwprof.ShortIntervalConfig())
	profiler, err := hwprof.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("profiling two context-switching processes (quantum 1000 events):")
	_, err = hwprof.Run(hwprof.Limit(merged, 4*cfg.IntervalLength), profiler,
		cfg.IntervalLength, func(i int, perfect, hardware map[hwprof.Tuple]uint64) {
			iv := hwprof.EvalInterval(perfect, hardware, cfg.ThresholdCount())
			cands := 0
			for _, n := range hardware {
				if n >= cfg.ThresholdCount() {
					cands++
				}
			}
			fmt.Printf("  interval %d: %2d candidates across both processes, error %.2f%%\n",
				i, cands, iv.Total*100)
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nno OS hooks, no process IDs, no software aggregation — the")
	fmt.Println("hardware just profiles whatever instruction stream executes.")
}
