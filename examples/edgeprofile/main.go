// Edge profiling for trace formation: profile the branch edges of the
// VM's bytecode interpreter and reconstruct the hot path through its
// dispatch loop — the input a trace-cache or hot-spot-relayout
// optimization needs (paper §2, "Trace Formation").
package main

import (
	"fmt"
	"log"
	"sort"

	"hwprof"
)

func main() {
	cfg := hwprof.BestMultiHash(hwprof.ShortIntervalConfig())
	profiler, err := hwprof.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Every control transfer in the interpreter emits a
	// <branchPC, targetPC> tuple.
	src, err := hwprof.NewProgramSource("interp", hwprof.KindEdge, true)
	if err != nil {
		log.Fatal(err)
	}

	edges := map[hwprof.Tuple]uint64{}
	_, err = hwprof.Run(hwprof.Limit(src, cfg.IntervalLength*5), profiler,
		cfg.IntervalLength, func(_ int, _, hardware map[hwprof.Tuple]uint64) {
			for t, n := range hardware {
				if n >= cfg.ThresholdCount() {
					edges[t] += n
				}
			}
		})
	if err != nil {
		log.Fatal(err)
	}

	type edge struct {
		t hwprof.Tuple
		n uint64
	}
	var hot []edge
	for t, n := range edges {
		hot = append(hot, edge{t, n})
	}
	sort.Slice(hot, func(i, j int) bool { return hot[i].n > hot[j].n })

	fmt.Println("hot branch edges (candidates for trace formation):")
	for i, e := range hot {
		if i >= 12 {
			break
		}
		fmt.Printf("  %#x -> %#x  ×%d\n", e.t.A, e.t.B, e.n)
	}

	// Greedily chain edges from the hottest one: the classic next-edge
	// heuristic for laying out a trace.
	byFrom := map[uint64]edge{}
	for _, e := range hot {
		if cur, ok := byFrom[e.t.A]; !ok || e.n > cur.n {
			byFrom[e.t.A] = e
		}
	}
	if len(hot) > 0 {
		fmt.Println("\ngreedy hot path from the hottest edge:")
		cur := hot[0]
		seen := map[uint64]bool{}
		for i := 0; i < 8; i++ {
			fmt.Printf("  %#x -> %#x\n", cur.t.A, cur.t.B)
			seen[cur.t.A] = true
			next, ok := byFrom[cur.t.B]
			if !ok || seen[next.t.A] {
				break
			}
			cur = next
		}
	}
}
