// Heavy-hitter accounting on network flows: the multi-hash architecture
// descends from Estan & Varghese's traffic-measurement sketches (paper
// §6), and the same hardware finds the flows consuming the most bandwidth.
// Here a tuple is <srcHost, dstHost> and each event is one packet; the
// profiler catches every flow above 0.5% of an interval's packets.
package main

import (
	"fmt"
	"log"
	"sort"

	"hwprof"
	"hwprof/internal/xrand"
)

// flowGen synthesizes packet arrivals: a few elephant flows inside a swarm
// of mice, with the elephant set drifting every interval.
type flowGen struct {
	r     *xrand.Rand
	epoch uint64
	n     uint64
}

func (g *flowGen) Next() (hwprof.Tuple, bool) {
	g.n++
	if g.n%200_000 == 0 {
		g.epoch++ // elephants churn slowly
	}
	u := g.r.Float64()
	switch {
	case u < 0.45: // elephants: 6 flows share ~45% of packets
		id := g.r.Uint64n(6)
		return hwprof.Tuple{
			A: 0x0a_00_00_01 + xrand.Mix64(g.epoch*31+id)%32,
			B: 0x0a_00_10_00 + id,
		}, true
	case u < 0.6: // steady medium flows
		id := g.r.Uint64n(400)
		return hwprof.Tuple{A: 0x0a_00_20_00 + id%64, B: 0x0a_00_30_00 + id}, true
	default: // mice: effectively unique scans
		return hwprof.Tuple{A: g.r.Uint64n(1 << 24), B: g.r.Uint64n(1 << 24)}, true
	}
}

func main() {
	cfg := hwprof.BestMultiHash(hwprof.Config{
		IntervalLength:   100_000, // packets per accounting interval
		ThresholdPercent: 0.5,     // report flows above 0.5% of packets
		TotalEntries:     2048,
		NumTables:        4,
		CounterWidth:     24,
		Seed:             9,
	})
	profiler, err := hwprof.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	src := hwprof.FromNexter(&flowGen{r: xrand.New(7)})
	_, err = hwprof.Run(hwprof.Limit(src, cfg.IntervalLength*4), profiler,
		cfg.IntervalLength, func(i int, perfect, hardware map[hwprof.Tuple]uint64) {
			iv := hwprof.EvalInterval(perfect, hardware, cfg.ThresholdCount())
			fmt.Printf("interval %d: %d heavy flows caught, accounting error %.2f%%\n",
				i, iv.PerfectCandidates, iv.Total*100)
			type flow struct {
				t hwprof.Tuple
				n uint64
			}
			var flows []flow
			for t, n := range hardware {
				if n >= cfg.ThresholdCount() {
					flows = append(flows, flow{t, n})
				}
			}
			sort.Slice(flows, func(a, b int) bool { return flows[a].n > flows[b].n })
			for _, f := range flows {
				fmt.Printf("    %s -> %s  %6d packets (≥%.1f%% of traffic)\n",
					ip(f.t.A), ip(f.t.B), f.n,
					100*float64(f.n)/float64(cfg.IntervalLength))
			}
		})
	if err != nil {
		log.Fatal(err)
	}
}

// ip renders the low 32 bits as a dotted quad.
func ip(v uint64) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
