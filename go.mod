module hwprof

go 1.22
