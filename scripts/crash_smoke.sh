#!/usr/bin/env bash
# Crash-durability smoke test: loadgen spawns a journaled profiled, streams
# concurrent sessions to a fixed offset, SIGKILLs the daemon mid-epoch, and
# restarts it on the same address — the restart replays the write-ahead
# journals and re-parks every session. Asserts each reconnecting session's
# profiles come out bit-identical to an uninterrupted local run, the
# recovery counters in /metrics are clean, and the journals are retired
# once the sessions drain. Runs both durable sync policies; ~15 seconds.
set -euo pipefail

cd "$(dirname "$0")/.."

WORKDIR=$(mktemp -d)
trap 'rm -rf "$WORKDIR"' EXIT

echo "== build"
go build -o "$WORKDIR/profiled" ./cmd/profiled
go build -o "$WORKDIR/loadgen" ./cmd/loadgen

LISTEN=127.0.0.1:19143
TELEMETRY=127.0.0.1:19144

for SYNC in batch interval; do
    JOURNAL="$WORKDIR/journal-$SYNC"
    echo "== crash run (sync $SYNC): 4 sessions, SIGKILL mid-epoch, restart, resume"
    "$WORKDIR/loadgen" -addr "$LISTEN" \
        -kill-daemon-at 25000 -daemon-bin "$WORKDIR/profiled" \
        -daemon-journal-dir "$JOURNAL" -daemon-journal-sync "$SYNC" \
        -daemon-telemetry "$TELEMETRY" \
        -sessions 4 -events 60000 -interval 10000 -shards 2 \
        2>"$WORKDIR/daemon-$SYNC.log" | tee "$WORKDIR/loadgen-$SYNC.out"

    grep -q "crash: PASS" "$WORKDIR/loadgen-$SYNC.out" \
        || { cat "$WORKDIR/daemon-$SYNC.log"; echo "FAIL: crash run did not pass"; exit 1; }
    grep -q "recovery counters clean (4 recovered, 0 failures)" "$WORKDIR/loadgen-$SYNC.out" \
        || { echo "FAIL: recovery counters not clean"; exit 1; }
    grep -q "4 session(s) recovered" "$WORKDIR/daemon-$SYNC.log" \
        || { cat "$WORKDIR/daemon-$SYNC.log"; echo "FAIL: restarted daemon did not report 4 recovered sessions"; exit 1; }
    [ "$(grep -c "resumed from" "$WORKDIR/daemon-$SYNC.log")" -ge 4 ] \
        || { cat "$WORKDIR/daemon-$SYNC.log"; echo "FAIL: fewer than 4 sessions resumed against the restarted daemon"; exit 1; }
    # Drained sessions retire their journals: nothing must remain for a
    # third daemon generation to recover.
    [ -z "$(ls -A "$JOURNAL" 2>/dev/null)" ] \
        || { ls -laR "$JOURNAL"; echo "FAIL: journals not retired after the sessions drained"; exit 1; }
done

echo "PASS: crash smoke"
