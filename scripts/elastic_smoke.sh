#!/usr/bin/env bash
# Elastic smoke test: start profiled with the online controller on a
# hair trigger and a deliberately tiny queue, then drive it with loadgen's
# chaos harness — full-speed sessions that keep the queue pinned at its
# high water, mid-frame disconnects, and frame corruption — and assert:
#
#   1. the controller actually moves: live resizes commit and the ladder
#      degrades (coarsen/shrink/park notices reach the clients);
#   2. every surviving session's profiles are bit-identical to a local
#      mirror split segment-wise at the announced resize boundaries
#      (loadgen -verify) — the park-and-restage contract end to end,
#      across connection faults;
#   3. the daemon's /metrics tells the same story (elastic + ladder +
#      per-tenant counters), and it still drains cleanly on SIGTERM.
#
# Under a minute of wall clock end to end.
set -euo pipefail

cd "$(dirname "$0")/.."

WORKDIR=$(mktemp -d)
DAEMON=""
trap '{ [ -n "$DAEMON" ] && kill -9 "$DAEMON"; rm -rf "$WORKDIR"; } 2>/dev/null || true' EXIT

echo "== build"
go build -o "$WORKDIR/profiled" ./cmd/profiled
go build -o "$WORKDIR/loadgen" ./cmd/loadgen

LISTEN=127.0.0.1:19143
TELEMETRY=127.0.0.1:19144

# Block policy (no -shed): backpressure keeps the queue full, which is the
# controller's pressure signal, and lossless profiles keep every session
# verifiable bit-for-bit. Queue 8 with the default 3/4 high water engages
# at queue length 6; engage/settle 1 makes the ladder move at nearly every
# pressured boundary, so 300k events are far more than enough to bottom
# out at park and exercise a resume from it.
echo "== start profiled (elastic, block policy, queue 8, hair-trigger controller)"
"$WORKDIR/profiled" -listen "$LISTEN" -telemetry "$TELEMETRY" \
    -elastic -elastic-engage 1 -elastic-settle 1 \
    -queue 8 -budget 64 -max-shards 2 \
    -journal-dir "$WORKDIR/journal" -journal-sync batch \
    -resume-grace 10s -quiet \
    >"$WORKDIR/profiled.log" 2>&1 &
DAEMON=$!
for i in $(seq 1 50); do
    kill -0 "$DAEMON" 2>/dev/null || { cat "$WORKDIR/profiled.log"; echo "FAIL: daemon died at startup"; exit 1; }
    grep -q "serving wire protocol" "$WORKDIR/profiled.log" && break
    sleep 0.1
done

echo "== chaos run: 4 verified sessions vs the resizing daemon, hangup + corruption injection"
"$WORKDIR/loadgen" -addr "$LISTEN" -metrics "http://$TELEMETRY/metrics" \
    -sessions 4 -events 300000 -interval 2000 -entries 2048 \
    -hangup-every 3 -hangup-bytes 60000 \
    -flip-every 4 -flip-bytes 30000 \
    -max-attempts 20 -verify \
    | tee "$WORKDIR/loadgen.out"

grep -q " 0 failed" "$WORKDIR/loadgen.out" || { echo "FAIL: a session failed (or diverged from its local mirror)"; exit 1; }
grep -Eq "^reconnects: [1-9]" "$WORKDIR/loadgen.out" || { echo "FAIL: fault injection produced no reconnects"; exit 1; }
grep -Eq "^elastic: [1-9][0-9]* resize" "$WORKDIR/loadgen.out" || { echo "FAIL: the controller committed no resizes"; exit 1; }
grep -Eq "^elastic: .*degrade=[1-9]" "$WORKDIR/loadgen.out" || { echo "FAIL: no degrade notices reached the clients"; exit 1; }
grep -Eq "^elastic: .*park=[1-9]" "$WORKDIR/loadgen.out" || { echo "FAIL: the ladder never bottomed out at park"; exit 1; }
grep -Eq "^verify: [1-9] session\(s\) bit-identical, 0 skipped" "$WORKDIR/loadgen.out" || { echo "FAIL: not every surviving session verified bit-identical"; exit 1; }
grep -Eq "hwprof_elastic_resizes_total [1-9]" "$WORKDIR/loadgen.out" || { echo "FAIL: daemon counted no elastic resizes in /metrics"; exit 1; }
grep -Eq 'hwprof_elastic_actions_total\{op="park"\} [1-9]' "$WORKDIR/loadgen.out" || { echo "FAIL: daemon counted no park actions in /metrics"; exit 1; }
grep -Eq 'hwprof_tenant_resizes_total\{tenant="127.0.0.1"\} [1-9]' "$WORKDIR/loadgen.out" || { echo "FAIL: per-tenant resize counter missing from /metrics"; exit 1; }
grep -q "hwprof_ladder_rung_sessions" "$WORKDIR/loadgen.out" || { echo "FAIL: ladder rung gauge missing from /metrics"; exit 1; }

echo "== drain with SIGTERM"
kill -TERM "$DAEMON"
for i in $(seq 1 50); do
    kill -0 "$DAEMON" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$DAEMON" 2>/dev/null; then
    cat "$WORKDIR/profiled.log"
    echo "FAIL: daemon did not exit after SIGTERM"
    kill -9 "$DAEMON"
    exit 1
fi
wait "$DAEMON" || { cat "$WORKDIR/profiled.log"; echo "FAIL: daemon exited non-zero"; exit 1; }
grep -q "drained cleanly" "$WORKDIR/profiled.log" || { cat "$WORKDIR/profiled.log"; echo "FAIL: daemon did not report a clean drain"; exit 1; }

echo "PASS: elastic smoke"
