#!/usr/bin/env bash
# Aggregation smoke test: build a two-level fleet tree — four publishing
# profiled daemons under two mid aggds under one root aggd — and drive it
# with loadgen's tree mode: one marked session per daemon fanning a single
# union stream out by shard route, with a deterministic mid-frame hangup on
# the first connections. Asserts the root's merged epochs are bit-identical
# to a local single-engine run over the union stream, that the hangups
# produced nonzero reconnect telemetry, that profctl can replay the epochs
# from the root's retention ring, and that every tier drains cleanly on
# SIGTERM. Under a minute of wall clock end to end.
set -euo pipefail

cd "$(dirname "$0")/.."

WORKDIR=$(mktemp -d)
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

echo "== build"
go build -o "$WORKDIR/profiled" ./cmd/profiled
go build -o "$WORKDIR/aggd" ./cmd/aggd
go build -o "$WORKDIR/loadgen" ./cmd/loadgen
go build -o "$WORKDIR/profctl" ./cmd/profctl

EPOCH=10000
D0=127.0.0.1:19233; D1=127.0.0.1:19235; D2=127.0.0.1:19237; D3=127.0.0.1:19239
MID1=127.0.0.1:19243; MID2=127.0.0.1:19245
ROOT=127.0.0.1:19247

wait_log() { # pid logfile pattern what
    for i in $(seq 1 50); do
        kill -0 "$1" 2>/dev/null || { cat "$2"; echo "FAIL: $4 died at startup"; exit 1; }
        grep -q "$3" "$2" && return 0
        sleep 0.1
    done
    cat "$2"; echo "FAIL: $4 did not come up"; exit 1
}

echo "== start 4 publishing daemons"
i=0
for addr in $D0 $D1 $D2 $D3; do
    "$WORKDIR/profiled" -listen "$addr" -telemetry "" -quiet \
        -publish -machine-id "m$i" -epoch-length "$EPOCH" -epoch-deadline -1s \
        >"$WORKDIR/profiled$i.log" 2>&1 &
    PIDS+=($!)
    eval "DPID$i=$!"
    i=$((i+1))
done
wait_log "$DPID0" "$WORKDIR/profiled0.log" "serving wire protocol" "profiled m0"
wait_log "$DPID3" "$WORKDIR/profiled3.log" "serving wire protocol" "profiled m3"

echo "== start 2 mid aggds and the root"
"$WORKDIR/aggd" -listen "$MID1" -telemetry "" -source mid1 \
    -children "$D0,$D1" -epoch-length "$EPOCH" -deadline -1s \
    >"$WORKDIR/mid1.log" 2>&1 &
MID1PID=$!; PIDS+=($!)
"$WORKDIR/aggd" -listen "$MID2" -telemetry "" -source mid2 \
    -children "$D2,$D3" -epoch-length "$EPOCH" -deadline -1s \
    >"$WORKDIR/mid2.log" 2>&1 &
MID2PID=$!; PIDS+=($!)
"$WORKDIR/aggd" -listen "$ROOT" -telemetry "" -source root \
    -children "$MID1,$MID2" -epoch-length "$EPOCH" -deadline -1s \
    >"$WORKDIR/root.log" 2>&1 &
ROOTPID=$!; PIDS+=($!)
wait_log "$MID1PID" "$WORKDIR/mid1.log" "serving merged epochs" "aggd mid1"
wait_log "$MID2PID" "$WORKDIR/mid2.log" "serving merged epochs" "aggd mid2"
wait_log "$ROOTPID" "$WORKDIR/root.log" "serving merged epochs" "aggd root"

echo "== tree run: union stream across the fleet, hangup on first connections"
"$WORKDIR/loadgen" -tree-daemons "$D0,$D1,$D2,$D3" -tree-root "$ROOT" \
    -events 50000 -interval "$EPOCH" \
    -hangup-every 2 -hangup-bytes 20000 \
    | tee "$WORKDIR/tree.out"

grep -q "bit-identical to single-engine union run" "$WORKDIR/tree.out" \
    || { echo "FAIL: root profile diverged from the union run"; exit 1; }
grep -Eq "reconnects: [1-9]" "$WORKDIR/tree.out" \
    || { echo "FAIL: the hangup injection produced no reconnects"; exit 1; }

echo "== profctl replays the merged epochs from the root's retention"
"$WORKDIR/profctl" -addr "$ROOT" -subscribe -interval "$EPOCH" -epochs 5 -top 3 \
    >"$WORKDIR/profctl.out" \
    || { cat "$WORKDIR/profctl.out"; echo "FAIL: profctl saw partial epochs at the root"; exit 1; }
grep -q 'epoch 4 from "root"' "$WORKDIR/profctl.out" \
    || { cat "$WORKDIR/profctl.out"; echo "FAIL: profctl did not replay all 5 epochs"; exit 1; }

echo "== drain every tier with SIGTERM"
for pid in "$ROOTPID" "$MID1PID" "$MID2PID" "$DPID0" "$DPID1" "$DPID2" "$DPID3"; do
    kill -TERM "$pid"
done
for pid in "$ROOTPID" "$MID1PID" "$MID2PID" "$DPID0" "$DPID1" "$DPID2" "$DPID3"; do
    for i in $(seq 1 100); do
        kill -0 "$pid" 2>/dev/null || break
        sleep 0.1
    done
    if kill -0 "$pid" 2>/dev/null; then
        echo "FAIL: pid $pid did not exit after SIGTERM"
        exit 1
    fi
    wait "$pid" || { echo "FAIL: pid $pid exited non-zero"; exit 1; }
done
grep -q "shut down cleanly" "$WORKDIR/root.log" \
    || { cat "$WORKDIR/root.log"; echo "FAIL: root aggd did not drain cleanly"; exit 1; }
grep -q "drained cleanly" "$WORKDIR/profiled0.log" \
    || { cat "$WORKDIR/profiled0.log"; echo "FAIL: profiled m0 did not drain cleanly"; exit 1; }

echo "PASS: agg smoke"
