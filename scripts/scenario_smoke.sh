#!/usr/bin/env bash
# Scenario smoke test: validate and gate the bundled scenario pack
# (including the adversarial scenarios), record one scenario and replay it
# byte-identically both locally and through a profiled daemon, then drive
# a fault-window scenario through loadgen so the connection-fault arming
# and reconnect path runs end to end.
set -euo pipefail

cd "$(dirname "$0")/.."

WORKDIR=$(mktemp -d)
trap 'rm -rf "$WORKDIR"' EXIT

echo "== build"
go build -o "$WORKDIR/scenario" ./cmd/scenario
go build -o "$WORKDIR/profiled" ./cmd/profiled
go build -o "$WORKDIR/loadgen" ./cmd/loadgen

echo "== check the bundled pack"
"$WORKDIR/scenario" check scenarios/*.scn

echo "== accuracy gates (full pack, adversarial scenarios included)"
"$WORKDIR/scenario" gate scenarios/*.scn

echo "== record + local byte-identical replay"
"$WORKDIR/scenario" record -o "$WORKDIR/steady.rec" scenarios/steady.scn
"$WORKDIR/scenario" replay "$WORKDIR/steady.rec" | tee "$WORKDIR/replay.out"
grep -q "byte-identical" "$WORKDIR/replay.out" || { echo "FAIL: local replay did not verify digests"; exit 1; }

LISTEN=127.0.0.1:19223

echo "== start profiled (block policy, as byte-identical replay requires)"
"$WORKDIR/profiled" -listen "$LISTEN" -telemetry "" \
    >"$WORKDIR/profiled.log" 2>&1 &
DAEMON=$!
trap 'kill -9 "$DAEMON" 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT
for i in $(seq 1 50); do
    kill -0 "$DAEMON" 2>/dev/null || { cat "$WORKDIR/profiled.log"; echo "FAIL: daemon died at startup"; exit 1; }
    grep -q "serving wire protocol" "$WORKDIR/profiled.log" && break
    sleep 0.1
done

echo "== remote byte-identical replay through the daemon"
"$WORKDIR/scenario" replay -addr "$LISTEN" "$WORKDIR/steady.rec" | tee "$WORKDIR/replay_remote.out"
grep -q "byte-identical" "$WORKDIR/replay_remote.out" || { echo "FAIL: remote replay did not verify digests"; exit 1; }

echo "== loadgen scenario mode with fault windows"
cat > "$WORKDIR/faulty.scn" <<'SCN'
scenario faulty
seed 5
interval 10000
entries 512

phase a 20000 {
	source workload gcc
}
phase b 20000 {
	source workload li
}

fault hangup 12000..14000
fault corrupt 26000..28000
SCN
"$WORKDIR/loadgen" -addr "$LISTEN" -sessions 2 -scenario "$WORKDIR/faulty.scn" | tee "$WORKDIR/loadgen.out"
grep -q "sessions: 2 ok, 0 admission-refused, 0 failed" "$WORKDIR/loadgen.out" \
    || { echo "FAIL: loadgen sessions did not all survive the fault windows"; exit 1; }
# Each session must actually have hit the faults and reconnected.
grep -Eq "reconnects: [1-9]" "$WORKDIR/loadgen.out" \
    || { echo "FAIL: fault windows armed no reconnects"; exit 1; }

kill -TERM "$DAEMON" 2>/dev/null || true
wait "$DAEMON" 2>/dev/null || true

echo "PASS: scenario smoke"
