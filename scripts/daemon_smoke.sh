#!/usr/bin/env bash
# Daemon smoke test: build profiled and profctl, start the daemon, stream a
# short synthetic workload through it, scrape the telemetry endpoint, then
# drain with SIGTERM and assert a clean exit. Five seconds of wall clock,
# exercising the whole serving path end to end.
set -euo pipefail

cd "$(dirname "$0")/.."

WORKDIR=$(mktemp -d)
trap 'rm -rf "$WORKDIR"' EXIT

echo "== build"
go build -o "$WORKDIR/profiled" ./cmd/profiled
go build -o "$WORKDIR/profctl" ./cmd/profctl

LISTEN=127.0.0.1:19123
TELEMETRY=127.0.0.1:19124

echo "== start profiled"
"$WORKDIR/profiled" -listen "$LISTEN" -telemetry "$TELEMETRY" \
    >"$WORKDIR/profiled.log" 2>&1 &
DAEMON=$!
# The daemon must not have died, and must be accepting, before we dial.
for i in $(seq 1 50); do
    kill -0 "$DAEMON" 2>/dev/null || { cat "$WORKDIR/profiled.log"; echo "FAIL: daemon died at startup"; exit 1; }
    grep -q "serving wire protocol" "$WORKDIR/profiled.log" && break
    sleep 0.1
done

echo "== stream a workload through it"
"$WORKDIR/profctl" -addr "$LISTEN" -workload gcc -intervals 3 -top 3 | tee "$WORKDIR/profctl.out"
grep -q "interval 2:" "$WORKDIR/profctl.out" || { echo "FAIL: profctl printed no third interval"; exit 1; }

echo "== scrape telemetry"
SCRAPE=$(curl -sf "http://$TELEMETRY/metrics" 2>/dev/null \
    || wget -qO- "http://$TELEMETRY/metrics")
echo "$SCRAPE" | grep -q "^hwprof_sessions_total 1$" || { echo "FAIL: telemetry did not count the session"; echo "$SCRAPE"; exit 1; }
echo "$SCRAPE" | grep -q "^hwprof_intervals_total 4$" || { echo "FAIL: telemetry did not count the intervals"; echo "$SCRAPE"; exit 1; }
echo "$SCRAPE" | grep -q "^hwprof_session_errors_total 0$" || { echo "FAIL: the smoke session errored"; echo "$SCRAPE"; exit 1; }

echo "== drain with SIGTERM"
kill -TERM "$DAEMON"
for i in $(seq 1 50); do
    kill -0 "$DAEMON" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$DAEMON" 2>/dev/null; then
    cat "$WORKDIR/profiled.log"
    echo "FAIL: daemon did not exit after SIGTERM"
    kill -9 "$DAEMON"
    exit 1
fi
wait "$DAEMON" || { cat "$WORKDIR/profiled.log"; echo "FAIL: daemon exited non-zero"; exit 1; }
grep -q "drained cleanly" "$WORKDIR/profiled.log" || { cat "$WORKDIR/profiled.log"; echo "FAIL: daemon did not report a clean drain"; exit 1; }

echo "PASS: daemon smoke"
