#!/usr/bin/env bash
# Long-soak driver: run the scenario-driven soak pack against an elastic,
# journaled profiled daemon and require every session to survive it —
# workload shifts, tenant bursts, a collision flood, a flattening Zipf
# sweep, and connection-fault windows (hangup + corruption) astride every
# phase transition — then drain the daemon cleanly on SIGTERM.
#
# Usage:
#
#   scripts/soak.sh              # the full pack: ~3 hours per session, off-CI
#   scripts/soak.sh smoke        # the 60-second 1/200th-scale variant (in CI)
#
#   SOAK_SESSIONS=8 scripts/soak.sh        # concurrent sessions (default 4)
#
# The smoke variant also runs loadgen -verify: every session's profiles
# must come out bit-identical to a local mirror split at any announced
# elastic resize boundaries. The full soak leaves -verify off — it would
# buffer hours of stream in memory — and relies on the daemon-side
# journal plus the zero-failed-sessions bar instead.
set -euo pipefail

cd "$(dirname "$0")/.."

VARIANT="${1:-soak}"
case "$VARIANT" in
soak)  SCN=scenarios/soak.scn;       VERIFY=() ;;
smoke) SCN=scenarios/soak_smoke.scn; VERIFY=(-verify) ;;
*) echo "usage: $0 [soak|smoke]"; exit 2 ;;
esac
SESSIONS="${SOAK_SESSIONS:-4}"

WORKDIR=$(mktemp -d)
DAEMON=""
trap '{ [ -n "$DAEMON" ] && kill -9 "$DAEMON"; rm -rf "$WORKDIR"; } 2>/dev/null || true' EXIT

echo "== build"
go build -o "$WORKDIR/profiled" ./cmd/profiled
go build -o "$WORKDIR/loadgen" ./cmd/loadgen
go build -o "$WORKDIR/scenario" ./cmd/scenario

echo "== check $SCN"
"$WORKDIR/scenario" check "$SCN"

LISTEN=127.0.0.1:19153
TELEMETRY=127.0.0.1:19154

# Elastic on with the default (conservative) hysteresis: the soak is paced,
# so the controller only moves if the daemon genuinely falls behind — the
# soak bar is that sessions survive either way. The journal makes every
# session crash-durable for the whole run; resume-grace must comfortably
# cover the reconnect backoff through every fault window.
echo "== start profiled (elastic, journaled, $VARIANT)"
"$WORKDIR/profiled" -listen "$LISTEN" -telemetry "$TELEMETRY" \
    -elastic -queue 16 -budget 64 -max-shards 2 \
    -journal-dir "$WORKDIR/journal" -journal-sync interval \
    -resume-grace 60s -quiet \
    >"$WORKDIR/profiled.log" 2>&1 &
DAEMON=$!
for i in $(seq 1 50); do
    kill -0 "$DAEMON" 2>/dev/null || { cat "$WORKDIR/profiled.log"; echo "FAIL: daemon died at startup"; exit 1; }
    grep -q "serving wire protocol" "$WORKDIR/profiled.log" && break
    sleep 0.1
done

echo "== soak: $SESSIONS session(s) × $SCN"
"$WORKDIR/loadgen" -addr "$LISTEN" -metrics "http://$TELEMETRY/metrics" \
    -sessions "$SESSIONS" -scenario "$SCN" -max-attempts 30 \
    ${VERIFY[@]+"${VERIFY[@]}"} \
    | tee "$WORKDIR/loadgen.out"

grep -q " 0 failed" "$WORKDIR/loadgen.out" || { echo "FAIL: a session failed during the soak"; exit 1; }
grep -Eq "^reconnects: [1-9]" "$WORKDIR/loadgen.out" || { echo "FAIL: the fault windows armed no reconnects"; exit 1; }
if [ "$VARIANT" = smoke ]; then
    grep -Eq "^verify: [1-9][0-9]* session\(s\) bit-identical, 0 skipped" "$WORKDIR/loadgen.out" \
        || { echo "FAIL: not every session verified bit-identical"; exit 1; }
fi
grep -Eq "hwprof_resume_failures_total 0$" "$WORKDIR/loadgen.out" || { echo "FAIL: resume failures during the soak"; exit 1; }
grep -Eq "hwprof_journal_recover_failures_total 0$" "$WORKDIR/loadgen.out" || { echo "FAIL: journal failures during the soak"; exit 1; }

echo "== drain with SIGTERM"
kill -TERM "$DAEMON"
for i in $(seq 1 100); do
    kill -0 "$DAEMON" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$DAEMON" 2>/dev/null; then
    cat "$WORKDIR/profiled.log"
    echo "FAIL: daemon did not exit after SIGTERM"
    exit 1
fi
wait "$DAEMON" || { cat "$WORKDIR/profiled.log"; echo "FAIL: daemon exited non-zero"; exit 1; }
grep -q "drained cleanly" "$WORKDIR/profiled.log" || { cat "$WORKDIR/profiled.log"; echo "FAIL: daemon did not report a clean drain"; exit 1; }

echo "PASS: $VARIANT soak ($SESSIONS session(s) × $SCN)"
