#!/usr/bin/env bash
# Loadgen smoke test: start profiled in shed policy with a small admission
# budget, then drive it with the chaos harness — concurrent sessions over
# budget, mid-frame disconnects, and frame corruption — and assert the
# daemon refuses the overflow, sheds under pressure, resumes every killed
# session, reports it all in /metrics, and still drains cleanly on SIGTERM.
# About thirty seconds of wall clock end to end.
set -euo pipefail

cd "$(dirname "$0")/.."

WORKDIR=$(mktemp -d)
trap 'rm -rf "$WORKDIR"' EXIT

echo "== build"
go build -o "$WORKDIR/profiled" ./cmd/profiled
go build -o "$WORKDIR/loadgen" ./cmd/loadgen

LISTEN=127.0.0.1:19133
TELEMETRY=127.0.0.1:19134

echo "== start profiled (shed policy, budget 4, resume on)"
"$WORKDIR/profiled" -listen "$LISTEN" -telemetry "$TELEMETRY" \
    -shed -queue 8 -budget 4 -resume-grace 10s -quiet \
    >"$WORKDIR/profiled.log" 2>&1 &
DAEMON=$!
for i in $(seq 1 50); do
    kill -0 "$DAEMON" 2>/dev/null || { cat "$WORKDIR/profiled.log"; echo "FAIL: daemon died at startup"; exit 1; }
    grep -q "serving wire protocol" "$WORKDIR/profiled.log" && break
    sleep 0.1
done

echo "== chaos run: 6 sessions over a 4-session budget, disconnect injection"
"$WORKDIR/loadgen" -addr "$LISTEN" -metrics "http://$TELEMETRY/metrics" \
    -sessions 6 -events 150000 -interval 10000 \
    -hangup-every 2 -hangup-bytes 60000 \
    | tee "$WORKDIR/loadgen.out"

grep -q " 0 failed" "$WORKDIR/loadgen.out" || { echo "FAIL: a session failed outright"; exit 1; }
grep -q " 2 admission-refused" "$WORKDIR/loadgen.out" || { echo "FAIL: the budget did not refuse the two over-budget sessions"; exit 1; }
grep -Eq "^shed: [1-9][0-9]* of" "$WORKDIR/loadgen.out" || { echo "FAIL: shed policy shed nothing under overload"; exit 1; }
grep -Eq "^reconnects: [1-9]" "$WORKDIR/loadgen.out" || { echo "FAIL: disconnect injection produced no reconnects"; exit 1; }
grep -Eq "hwprof_resumes_total [1-9]" "$WORKDIR/loadgen.out" || { echo "FAIL: daemon reported no resumes in /metrics"; exit 1; }
grep -Eq "hwprof_events_shed_total [1-9]" "$WORKDIR/loadgen.out" || { echo "FAIL: daemon reported no shed events in /metrics"; exit 1; }
grep -Eq "hwprof_admission_refused_cost_total 2" "$WORKDIR/loadgen.out" || { echo "FAIL: daemon did not count the admission refusals"; exit 1; }

echo "== chaos run: frame corruption must park and resume, not kill"
"$WORKDIR/loadgen" -addr "$LISTEN" -metrics "http://$TELEMETRY/metrics" \
    -sessions 2 -events 60000 -interval 10000 \
    -flip-every 2 -flip-bytes 30000 \
    | tee "$WORKDIR/loadgen2.out"
grep -q " 0 failed" "$WORKDIR/loadgen2.out" || { echo "FAIL: corruption killed a session instead of parking it"; exit 1; }
grep -Eq "hwprof_frames_corrupt_total [1-9]" "$WORKDIR/loadgen2.out" || { echo "FAIL: daemon counted no corrupt frames"; exit 1; }
grep -Eq "^reconnects: [1-9]" "$WORKDIR/loadgen2.out" || { echo "FAIL: corruption produced no reconnects"; exit 1; }

echo "== drain with SIGTERM"
kill -TERM "$DAEMON"
for i in $(seq 1 50); do
    kill -0 "$DAEMON" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$DAEMON" 2>/dev/null; then
    cat "$WORKDIR/profiled.log"
    echo "FAIL: daemon did not exit after SIGTERM"
    kill -9 "$DAEMON"
    exit 1
fi
wait "$DAEMON" || { cat "$WORKDIR/profiled.log"; echo "FAIL: daemon exited non-zero"; exit 1; }
grep -q "drained cleanly" "$WORKDIR/profiled.log" || { cat "$WORKDIR/profiled.log"; echo "FAIL: daemon did not report a clean drain"; exit 1; }

echo "PASS: loadgen smoke"
