#!/usr/bin/env bash
# Bench comparison: run the fixed-seed hot-path benchmark suite at a base
# ref (default: the previous commit) and at the working tree, then print a
# benchstat-style delta table. Advisory — the script never fails on a
# regression; the enforcing gate is `benchrun -gate` against the committed
# BENCH_*.json baseline. Usage:
#
#     scripts/bench_compare.sh [base-ref] [benchtime]
#
# Writes the table to stdout; when GITHUB_STEP_SUMMARY is set (CI), the
# table is also appended there as a fenced block.
set -euo pipefail

cd "$(dirname "$0")/.."

BASE_REF=${1:-HEAD~1}
BENCHTIME=${2:-300ms}

WORKDIR=$(mktemp -d)
BASETREE="$WORKDIR/base"
trap 'git worktree remove --force "$BASETREE" >/dev/null 2>&1 || true; rm -rf "$WORKDIR"' EXIT

echo "== benchmarking base ($BASE_REF)" >&2
git worktree add --detach "$BASETREE" "$BASE_REF" >/dev/null
if [ ! -d "$BASETREE/cmd/benchrun" ]; then
    echo "bench_compare: $BASE_REF predates cmd/benchrun; nothing to compare" >&2
    exit 0
fi
(cd "$BASETREE" && go run ./cmd/benchrun -benchtime "$BENCHTIME" -out "$WORKDIR/old.json")

echo "== benchmarking working tree" >&2
go run ./cmd/benchrun -benchtime "$BENCHTIME" -out "$WORKDIR/new.json"

TABLE=$(go run ./cmd/benchrun -delta "$WORKDIR/old.json" "$WORKDIR/new.json")
echo "$TABLE"

if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
    {
        echo "### Bench compare: $BASE_REF vs HEAD (advisory, benchtime=$BENCHTIME)"
        echo '```'
        echo "$TABLE"
        echo '```'
    } >>"$GITHUB_STEP_SUMMARY"
fi
