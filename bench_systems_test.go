// Benchmarks for the substrate systems: the VM, the cache and predictor
// pipelines, the adaptive-interval controller and the stratified baseline
// hot path. These complement the per-figure benches in bench_test.go.
package hwprof_test

import (
	"testing"

	"hwprof"
	"hwprof/internal/adaptive"
	"hwprof/internal/bpred"
	"hwprof/internal/cache"
	"hwprof/internal/core"
	"hwprof/internal/event"
	"hwprof/internal/opt"
	"hwprof/internal/stratified"
	"hwprof/internal/vm/progs"
)

func BenchmarkVMExecution(b *testing.B) {
	p, err := progs.ByName("quicksort")
	if err != nil {
		b.Fatal(err)
	}
	m, err := p.NewMachine()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	steps := uint64(0)
	for i := 0; i < b.N; i++ {
		m.Reset()
		n, err := m.Run(0)
		if err != nil {
			b.Fatal(err)
		}
		steps += n
	}
	b.ReportMetric(float64(steps)/float64(b.N), "instrs/run")
}

func BenchmarkDelinquentLoadPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prog, _ := progs.ByName("treeins")
		m, err := prog.NewMachine()
		if err != nil {
			b.Fatal(err)
		}
		c, err := cache.New(cache.Config{SizeBytes: 512, Ways: 2, LineBytes: 32})
		if err != nil {
			b.Fatal(err)
		}
		cfg := core.BestMultiHash(core.ShortIntervalConfig())
		cfg.Seed = 3
		p, err := core.NewMultiHash(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := opt.FindDelinquentLoads(m, c, p, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Coverage*100, "%miss-coverage")
	}
}

func BenchmarkProblematicBranchPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prog, _ := progs.ByName("crcbits")
		m, err := prog.NewMachine()
		if err != nil {
			b.Fatal(err)
		}
		pred, err := bpred.NewTwoBit(1024)
		if err != nil {
			b.Fatal(err)
		}
		cfg := core.BestMultiHash(core.ShortIntervalConfig())
		cfg.Seed = 3
		p, err := core.NewMultiHash(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := opt.FindProblematicBranches(m, pred, p, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Coverage*100, "%mispredict-coverage")
	}
}

func BenchmarkAdaptiveObserve(b *testing.B) {
	base := core.BestMultiHash(core.ShortIntervalConfig())
	base.Seed = 5
	a, err := adaptive.New(adaptive.Config{
		Base:        base,
		MinLength:   1_000,
		MaxLength:   1_000_000,
		ShrinkAbove: 60,
		GrowBelow:   10,
		Settle:      1,
	})
	if err != nil {
		b.Fatal(err)
	}
	w, _ := hwprof.NewWorkload("m88ksim", hwprof.KindValue, 1)
	tuples := make([]event.Tuple, 1<<16)
	for i := range tuples {
		tuples[i], _ = w.Next()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Observe(tuples[i&(1<<16-1)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStratifiedObserve(b *testing.B) {
	s, err := stratified.New(stratified.Config{
		TableEntries:      2048,
		SamplingThreshold: 25,
		AggEntries:        16,
		AggFlushCount:     8,
		BufferEntries:     100,
		TagBits:           8,
		Seed:              1,
	})
	if err != nil {
		b.Fatal(err)
	}
	w, _ := hwprof.NewWorkload("gcc", hwprof.KindValue, 1)
	tuples := make([]event.Tuple, 1<<16)
	for i := range tuples {
		tuples[i], _ = w.Next()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Observe(tuples[i&(1<<16-1)])
	}
}
