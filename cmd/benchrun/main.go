// benchrun executes the fixed-seed hot-path benchmark suite
// (internal/benchsuite) and emits the results as JSON — the format of the
// repository's BENCH_*.json perf-trajectory files.
//
// Usage:
//
//	go run ./cmd/benchrun -out baseline.json
//	...change the hot path...
//	go run ./cmd/benchrun -baseline baseline.json -out BENCH_3.json
//
// With -baseline the previous run is embedded in the output and a
// per-case speedup (baseline ns/event ÷ current ns/event, falling back to
// ns/op for component cases) is computed, so a single committed file
// carries the before/after pair.
//
// Two more modes serve CI:
//
//	go run ./cmd/benchrun -gate BENCH_4.json
//
// runs the suite and fails (exit 1) if any case allocates, or if any
// case's headline time regressed by more than -gate-threshold relative
// to the committed baseline. The regression check is normalized: each
// case's current/baseline ratio is divided by the median ratio across
// the suite before comparing against the threshold, so a CI runner that
// is uniformly slower (or faster) than the machine that produced the
// baseline does not trip the gate — only cases that regressed relative
// to the rest of the suite do. Cases over threshold get one re-measure
// at doubled benchtime (keeping the fastest run) before failing, so a
// transient scheduling hiccup is not a red build.
//
//	go run ./cmd/benchrun -delta old.json new.json
//
// runs no benchmarks: it prints a benchstat-style per-case delta table
// between two previously saved reports.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"hwprof/internal/benchsuite"
)

// CaseResult is one benchmark case's measurement. Advisory marks cases
// recorded for the trajectory but excluded from timing regression gates
// (their allocs are still gated).
type CaseResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	NsPerEvent  float64 `json:"ns_per_event,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Advisory    bool    `json:"advisory,omitempty"`
}

// Report is the BENCH_*.json document.
type Report struct {
	Date      string             `json:"date"`
	GoVersion string             `json:"go"`
	GOOS      string             `json:"goos"`
	GOARCH    string             `json:"goarch"`
	Benchtime string             `json:"benchtime"`
	Cases     []CaseResult       `json:"cases"`
	Baseline  *Report            `json:"baseline,omitempty"`
	Speedup   map[string]float64 `json:"speedup,omitempty"`
}

// headline returns the case's per-event cost when it has one, else ns/op.
func (c CaseResult) headline() float64 {
	if c.NsPerEvent > 0 {
		return c.NsPerEvent
	}
	return c.NsPerOp
}

// unit names the headline metric.
func (c CaseResult) unit() string {
	if c.NsPerEvent > 0 {
		return "ns/event"
	}
	return "ns/op"
}

// measure runs one case until it accumulates benchtime of measured work.
func measure(f func(b *testing.B), benchtime time.Duration) testing.BenchmarkResult {
	// testing.Benchmark has no benchtime knob outside `go test`, so
	// grow iterations ourselves until the measured time is credible.
	last := testing.Benchmark(func(b *testing.B) { f(b) })
	for last.T < benchtime && last.N < 1<<30 {
		n := last.N * 4
		last = testing.Benchmark(func(b *testing.B) {
			if b.N < n {
				b.N = n
			}
			f(b)
		})
	}
	return last
}

// measureCase measures one case repeat times and keeps the fastest run —
// the min estimator discards frequency-scaling and scheduling noise,
// which on single-digit-ns component cases dwarfs any real change;
// allocations are identical across runs by construction.
func measureCase(c benchsuite.Case, benchtime time.Duration, repeat int) CaseResult {
	best := measure(c.F, benchtime)
	bestNs := float64(best.T.Nanoseconds()) / float64(best.N)
	for i := 1; i < repeat; i++ {
		r := measure(c.F, benchtime)
		if ns := float64(r.T.Nanoseconds()) / float64(r.N); ns < bestNs {
			best, bestNs = r, ns
		}
	}
	return CaseResult{
		Name:        c.Name,
		Iterations:  best.N,
		NsPerOp:     bestNs,
		NsPerEvent:  best.Extra["ns/event"],
		AllocsPerOp: best.AllocsPerOp(),
		BytesPerOp:  best.AllocedBytesPerOp(),
		Advisory:    c.Advisory,
	}
}

// run executes the suite with min-of-repeat measurements per case.
func run(benchtime time.Duration, repeat int) Report {
	rep := Report{
		Date:      time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Benchtime: benchtime.String(),
	}
	for _, c := range benchsuite.Suite() {
		fmt.Fprintf(os.Stderr, "running %-28s ", c.Name)
		res := measureCase(c, benchtime, repeat)
		rep.Cases = append(rep.Cases, res)
		fmt.Fprintf(os.Stderr, "%10.2f ns/op %8.2f ns/event %4d allocs/op\n",
			res.NsPerOp, res.NsPerEvent, res.AllocsPerOp)
	}
	return rep
}

func loadReport(path string) (Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return Report{}, fmt.Errorf("parsing %s: %w", path, err)
	}
	return rep, nil
}

// printDelta writes a benchstat-style per-case table of old vs new
// headline times. Cases present in only one report are listed with the
// other side blank.
func printDelta(w io.Writer, old, cur Report) {
	oldBy := make(map[string]CaseResult, len(old.Cases))
	for _, c := range old.Cases {
		oldBy[c.Name] = c
	}
	fmt.Fprintf(w, "%-30s %12s %12s %8s  %s\n", "case", "old", "new", "delta", "unit")
	for _, c := range cur.Cases {
		b, ok := oldBy[c.Name]
		if !ok {
			fmt.Fprintf(w, "%-30s %12s %12.2f %8s  %s\n", c.Name, "-", c.headline(), "new", c.unit())
			continue
		}
		delete(oldBy, c.Name)
		delta := "~"
		if b.headline() > 0 {
			delta = fmt.Sprintf("%+.1f%%", (c.headline()/b.headline()-1)*100)
		}
		fmt.Fprintf(w, "%-30s %12.2f %12.2f %8s  %s\n",
			c.Name, b.headline(), c.headline(), delta, c.unit())
	}
	// Cases that disappeared, in the old report's order.
	for _, c := range old.Cases {
		if _, gone := oldBy[c.Name]; gone {
			fmt.Fprintf(w, "%-30s %12.2f %12s %8s  %s\n", c.Name, c.headline(), "-", "gone", c.unit())
		}
	}
}

// gate checks the current run against a committed baseline and returns
// the list of violations. Two gates apply:
//
//   - allocation-freedom: every case must report 0 allocs/op — the
//     steady-state hot path's zero-allocation contract;
//   - normalized regression: for non-advisory cases present in both
//     reports, the current/baseline headline ratio divided by the
//     suite's median ratio must not exceed maxRatio. Dividing by the
//     median cancels whole-machine speed differences between the
//     baseline machine and the CI runner, leaving only per-case
//     regressions.
type gateFail struct {
	name   string
	msg    string
	timing bool // a headline regression (retryable) rather than an alloc failure
}

func gate(cur, base Report, maxRatio float64) []gateFail {
	var fails []gateFail
	for _, c := range cur.Cases {
		if c.AllocsPerOp != 0 {
			fails = append(fails, gateFail{c.Name, fmt.Sprintf("%s: %d allocs/op (want 0)", c.Name, c.AllocsPerOp), false})
		}
	}
	baseBy := make(map[string]CaseResult, len(base.Cases))
	for _, c := range base.Cases {
		baseBy[c.Name] = c
	}
	type ratioCase struct {
		name  string
		ratio float64
	}
	var ratios []ratioCase
	for _, c := range cur.Cases {
		if c.Advisory {
			continue
		}
		if b, ok := baseBy[c.Name]; ok && b.headline() > 0 && c.headline() > 0 {
			ratios = append(ratios, ratioCase{c.Name, c.headline() / b.headline()})
		}
	}
	if len(ratios) == 0 {
		return append(fails, gateFail{"", "no cases in common with baseline", false})
	}
	sorted := make([]float64, len(ratios))
	for i, r := range ratios {
		sorted[i] = r.ratio
	}
	sort.Float64s(sorted)
	med := sorted[len(sorted)/2]
	if n := len(sorted); n%2 == 0 {
		med = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	for _, r := range ratios {
		if norm := r.ratio / med; norm > maxRatio {
			fails = append(fails, gateFail{r.name, fmt.Sprintf(
				"%s: %.2fx vs baseline (%.2fx after normalizing by suite median %.2fx, threshold %.2fx)",
				r.name, r.ratio, norm, med, maxRatio), true})
		}
	}
	return fails
}

// timingFails returns the set of case names whose gate failure is a
// (retryable) timing regression.
func timingFails(fails []gateFail) map[string]bool {
	out := make(map[string]bool)
	for _, f := range fails {
		if f.timing {
			out[f.name] = true
		}
	}
	return out
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	baselinePath := flag.String("baseline", "", "previous benchrun JSON to embed for before/after comparison")
	benchtime := flag.Duration("benchtime", time.Second, "minimum measured time per case")
	repeat := flag.Int("repeat", 1, "measure each case this many times and keep the fastest (min estimator)")
	gatePath := flag.String("gate", "", "baseline JSON to gate against: exit 1 on allocations or normalized headline regression")
	gateThreshold := flag.Float64("gate-threshold", 1.25, "max allowed current/baseline headline ratio after median normalization")
	deltaMode := flag.Bool("delta", false, "compare two saved reports (args: old.json new.json); runs no benchmarks")
	flag.Parse()

	if *deltaMode {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchrun: -delta needs exactly two report files: old.json new.json")
			os.Exit(2)
		}
		old, err := loadReport(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrun:", err)
			os.Exit(1)
		}
		cur, err := loadReport(flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrun:", err)
			os.Exit(1)
		}
		printDelta(os.Stdout, old, cur)
		return
	}

	if *repeat < 1 {
		*repeat = 1
	}
	rep := run(*benchtime, *repeat)

	if *gatePath != "" {
		base, err := loadReport(*gatePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrun:", err)
			os.Exit(1)
		}
		fails := gate(rep, base, *gateThreshold)
		// Timing regressions get one retry at doubled benchtime before
		// they fail the gate: the committed baseline is a min estimate,
		// so a transiently noisy run can sit above threshold without any
		// real regression. Keep the fastest measurement seen either way.
		if retry := timingFails(fails); len(retry) > 0 {
			fmt.Fprintf(os.Stderr, "benchrun: re-measuring %d regressed case(s) at 2x benchtime\n", len(retry))
			byName := make(map[string]benchsuite.Case)
			for _, c := range benchsuite.Suite() {
				byName[c.Name] = c
			}
			for i := range rep.Cases {
				c := &rep.Cases[i]
				if !retry[c.Name] {
					continue
				}
				r := measureCase(byName[c.Name], 2*(*benchtime), *repeat)
				if r.headline() < c.headline() {
					*c = r
				}
				fmt.Fprintf(os.Stderr, "retried %-28s %10.2f ns/op %8.2f ns/event\n",
					c.Name, c.NsPerOp, c.NsPerEvent)
			}
			fails = gate(rep, base, *gateThreshold)
		}
		printDelta(os.Stderr, base, rep)
		if len(fails) > 0 {
			for _, f := range fails {
				fmt.Fprintln(os.Stderr, "benchrun: GATE FAIL:", f.msg)
			}
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "benchrun: gate passed")
	}

	if *baselinePath != "" {
		base, err := loadReport(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrun:", err)
			os.Exit(1)
		}
		base.Baseline = nil // never nest more than one level
		base.Speedup = nil
		rep.Baseline = &base
		rep.Speedup = make(map[string]float64, len(rep.Cases))
		byName := make(map[string]CaseResult, len(base.Cases))
		for _, c := range base.Cases {
			byName[c.Name] = c
		}
		for _, c := range rep.Cases {
			if b, ok := byName[c.Name]; ok && c.headline() > 0 {
				rep.Speedup[c.Name] = b.headline() / c.headline()
			}
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrun:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchrun:", err)
		os.Exit(1)
	}
}
