// benchrun executes the fixed-seed hot-path benchmark suite
// (internal/benchsuite) and emits the results as JSON — the format of the
// repository's BENCH_*.json perf-trajectory files.
//
// Usage:
//
//	go run ./cmd/benchrun -out baseline.json
//	...change the hot path...
//	go run ./cmd/benchrun -baseline baseline.json -out BENCH_3.json
//
// With -baseline the previous run is embedded in the output and a
// per-case speedup (baseline ns/event ÷ current ns/event, falling back to
// ns/op for component cases) is computed, so a single committed file
// carries the before/after pair.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"hwprof/internal/benchsuite"
)

// CaseResult is one benchmark case's measurement.
type CaseResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	NsPerEvent  float64 `json:"ns_per_event,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Report is the BENCH_*.json document.
type Report struct {
	Date      string             `json:"date"`
	GoVersion string             `json:"go"`
	GOOS      string             `json:"goos"`
	GOARCH    string             `json:"goarch"`
	Benchtime string             `json:"benchtime"`
	Cases     []CaseResult       `json:"cases"`
	Baseline  *Report            `json:"baseline,omitempty"`
	Speedup   map[string]float64 `json:"speedup,omitempty"`
}

// headline returns the case's per-event cost when it has one, else ns/op.
func (c CaseResult) headline() float64 {
	if c.NsPerEvent > 0 {
		return c.NsPerEvent
	}
	return c.NsPerOp
}

func run(benchtime time.Duration) Report {
	rep := Report{
		Date:      time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Benchtime: benchtime.String(),
	}
	for _, c := range benchsuite.Suite() {
		fmt.Fprintf(os.Stderr, "running %-28s ", c.Name)
		var last testing.BenchmarkResult
		f := c.F
		// testing.Benchmark has no benchtime knob outside `go test`, so
		// grow iterations ourselves until the measured time is credible.
		last = testing.Benchmark(func(b *testing.B) { f(b) })
		for last.T < benchtime && last.N < 1<<30 {
			n := last.N * 4
			last = testing.Benchmark(func(b *testing.B) {
				if b.N < n {
					b.N = n
				}
				f(b)
			})
		}
		res := CaseResult{
			Name:        c.Name,
			Iterations:  last.N,
			NsPerOp:     float64(last.T.Nanoseconds()) / float64(last.N),
			NsPerEvent:  last.Extra["ns/event"],
			AllocsPerOp: last.AllocsPerOp(),
			BytesPerOp:  last.AllocedBytesPerOp(),
		}
		rep.Cases = append(rep.Cases, res)
		fmt.Fprintf(os.Stderr, "%10.2f ns/op %8.2f ns/event %4d allocs/op\n",
			res.NsPerOp, res.NsPerEvent, res.AllocsPerOp)
	}
	return rep
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	baselinePath := flag.String("baseline", "", "previous benchrun JSON to embed for before/after comparison")
	benchtime := flag.Duration("benchtime", time.Second, "minimum measured time per case")
	flag.Parse()

	rep := run(*benchtime)

	if *baselinePath != "" {
		raw, err := os.ReadFile(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrun:", err)
			os.Exit(1)
		}
		var base Report
		if err := json.Unmarshal(raw, &base); err != nil {
			fmt.Fprintln(os.Stderr, "benchrun: parsing baseline:", err)
			os.Exit(1)
		}
		base.Baseline = nil // never nest more than one level
		base.Speedup = nil
		rep.Baseline = &base
		rep.Speedup = make(map[string]float64, len(rep.Cases))
		byName := make(map[string]CaseResult, len(base.Cases))
		for _, c := range base.Cases {
			byName[c.Name] = c
		}
		for _, c := range rep.Cases {
			if b, ok := byName[c.Name]; ok && c.headline() > 0 {
				rep.Speedup[c.Name] = b.headline() / c.headline()
			}
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrun:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchrun:", err)
		os.Exit(1)
	}
}
