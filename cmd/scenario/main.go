// Command scenario is the CLI of the scenario subsystem: it checks,
// runs, records, replays and gates declarative workload scenarios
// (see internal/scenario and DESIGN.md §15).
//
// Usage:
//
//	scenario check  pack.scn ...            # parse + validate, print summary
//	scenario run    pack.scn                # measured local run, enforce gates
//	scenario record -o pack.rec pack.scn    # run and capture a replay artifact
//	scenario replay pack.rec                # replay, verify byte-identical profiles
//	scenario replay -addr HOST:P pack.rec   # ... through a profiled daemon
//	scenario gate   pack.scn ...            # run each, enforce gates (CI entry)
//	scenario domains                        # list event domains
//
// Exit status is non-zero on any parse error, run failure, gate
// violation, or replay divergence.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"hwprof"
	"hwprof/internal/event"
	"hwprof/internal/scenario"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch cmd, args := os.Args[1], os.Args[2:]; cmd {
	case "check":
		err = runCheck(args)
	case "run":
		err = runRun(args)
	case "record":
		err = runRecord(args)
	case "replay":
		err = runReplay(args)
	case "gate":
		err = runGate(args)
	case "domains":
		for _, d := range scenario.Domains() {
			fmt.Println(d)
		}
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "scenario: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "scenario:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  scenario check  <file.scn> ...
  scenario run    <file.scn>
  scenario record -o <file.rec> <file.scn>
  scenario replay [-addr host:port] <file.rec>
  scenario gate   <file.scn> ...
  scenario domains`)
}

func load(path string) (*scenario.Scenario, string, error) {
	text, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	sc, err := scenario.Parse(string(text))
	if err != nil {
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	return sc, string(text), nil
}

func runCheck(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("check: need at least one scenario file")
	}
	for _, path := range args {
		sc, _, err := load(path)
		if err != nil {
			return err
		}
		fmt.Printf("%s: OK: %s\n", path, sc)
	}
	return nil
}

func report(res *scenario.Result) {
	fmt.Printf("  intervals %d  net-error %.3f%%  false-pos %.3f%%  false-neg %.3f%%\n",
		res.Intervals, res.Mean.Total*100, res.Mean.FalsePos*100, res.Mean.FalseNeg*100)
	for _, g := range res.Scenario.Gates {
		status := "PASS"
		for _, f := range res.Failures {
			if f.Gate == g {
				status = "FAIL"
			}
		}
		fmt.Printf("  gate %-14s <= %7.3f%%  %s\n", g.Metric, g.Max, status)
	}
}

func runRun(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("run: need exactly one scenario file")
	}
	sc, _, err := load(args[0])
	if err != nil {
		return err
	}
	fmt.Printf("%s\n", sc)
	res, err := sc.Run(context.Background(), scenario.RunOptions{})
	if err != nil {
		return err
	}
	report(res)
	if !res.Passed() {
		return fmt.Errorf("%s: %d gate(s) failed", sc.Name, len(res.Failures))
	}
	return nil
}

func runRecord(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	out := fs.String("o", "", "output artifact path (required)")
	fs.Parse(args)
	if fs.NArg() != 1 || *out == "" {
		return fmt.Errorf("record: want `scenario record -o <file.rec> <file.scn>`")
	}
	_, text, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	rec, res, err := scenario.Record(context.Background(), text)
	if err != nil {
		return err
	}
	report(res)
	if err := os.WriteFile(*out, rec.Encode(), 0o644); err != nil {
		return err
	}
	fmt.Printf("recorded %s: %d events, %d intervals -> %s\n",
		rec.Scenario.Name, rec.Scenario.TotalEvents(), len(rec.Digests), *out)
	if !res.Passed() {
		return fmt.Errorf("%s: %d gate(s) failed (artifact written anyway)", rec.Scenario.Name, len(res.Failures))
	}
	return nil
}

func runReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	addr := fs.String("addr", "", "replay through the profiled daemon at host:port instead of locally")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("replay: need exactly one recording file")
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	rec, err := scenario.DecodeRecording(data)
	if err != nil {
		return err
	}
	if *addr != "" {
		return replayRemote(rec, *addr)
	}
	res, err := rec.Replay(context.Background())
	if err != nil {
		return err
	}
	report(res)
	fmt.Printf("replay %s: %d intervals byte-identical\n", rec.Scenario.Name, len(rec.Digests))
	return nil
}

// replayRemote streams the recorded trace through a profiled daemon and
// verifies the returned profiles are byte-identical to the recording. The
// daemon must run the block backpressure policy (shed drops events and
// cannot be byte-faithful).
func replayRemote(rec *scenario.Recording, addr string) error {
	src, err := rec.Source()
	if err != nil {
		return err
	}
	sc := rec.Scenario
	sess, err := hwprof.Connect(context.Background(), addr,
		hwprof.WithConfig(sc.Config()),
		hwprof.WithShards(sc.Shards),
		hwprof.WithBatchSize(sc.Batch))
	if err != nil {
		return fmt.Errorf("connecting to %s: %w", addr, err)
	}
	if sess.Shedding() {
		sess.Close()
		return fmt.Errorf("daemon at %s runs the shed policy; byte-identical replay needs block", addr)
	}
	var digests []uint32
	n, err := sess.Run(src, func(index int, counts map[event.Tuple]uint64) {
		digests = append(digests, scenario.Digest(index, counts))
	})
	if err != nil {
		return fmt.Errorf("remote replay: %w", err)
	}
	if err := rec.CheckDigests(digests); err != nil {
		return err
	}
	fmt.Printf("replay %s via %s: %d intervals byte-identical\n", sc.Name, addr, n)
	return nil
}

func runGate(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("gate: need at least one scenario file")
	}
	failed := 0
	for _, path := range args {
		sc, _, err := load(path)
		if err != nil {
			return err
		}
		fmt.Printf("%s: %s\n", path, sc)
		res, err := sc.Run(context.Background(), scenario.RunOptions{})
		if err != nil {
			return err
		}
		report(res)
		if !res.Passed() {
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d scenario(s) failed their gates", failed, len(args))
	}
	fmt.Printf("all %d scenario(s) within accuracy bounds\n", len(args))
	return nil
}
