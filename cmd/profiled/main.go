// Command profiled is the profiling daemon: it serves the hwprof wire
// protocol over TCP, running one sharded profiling engine per client
// session and returning interval profiles as the stream crosses interval
// boundaries, with telemetry exposed over HTTP in Prometheus text form.
//
// Usage:
//
//	profiled -listen :9123 -telemetry :9124
//	profiled -listen :9123 -shed -queue 32 -max-sessions 512
//
// SIGINT/SIGTERM drain gracefully: every session's queued batches are
// profiled, its final partial profile and goodbye are sent, and the process
// exits 0. A second signal — or the -drain-timeout deadline — force-closes
// whatever remains.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hwprof/internal/server"
)

func main() {
	var (
		listen       = flag.String("listen", ":9123", "TCP address to serve the wire protocol on")
		telemetry    = flag.String("telemetry", ":9124", "HTTP address for /metrics and /healthz; empty disables")
		queue        = flag.Int("queue", server.DefaultQueueDepth, "per-session queue depth in batches")
		maxSessions  = flag.Int("max-sessions", server.DefaultMaxSessions, "maximum concurrent sessions")
		maxShards    = flag.Int("max-shards", server.DefaultMaxShards, "clamp on per-session shard count")
		shed         = flag.Bool("shed", false, "shed (drop and count) batches when a session queue is full instead of blocking the stream")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown deadline before force-closing sessions")
		quiet        = flag.Bool("quiet", false, "suppress per-session log lines")
	)
	flag.Parse()
	if err := run(*listen, *telemetry, *queue, *maxSessions, *maxShards, *shed, *drainTimeout, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "profiled:", err)
		os.Exit(1)
	}
}

func run(listen, telemetry string, queue, maxSessions, maxShards int, shed bool, drainTimeout time.Duration, quiet bool) error {
	logf := log.Printf
	if quiet {
		logf = nil
	}
	srv := server.New(server.Config{
		QueueDepth:  queue,
		MaxSessions: maxSessions,
		MaxShards:   maxShards,
		Shed:        shed,
		Logf:        logf,
	})

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return fmt.Errorf("listen %s: %w", listen, err)
	}
	log.Printf("profiled: serving wire protocol on %s", ln.Addr())

	var tsrv *http.Server
	if telemetry != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", srv.Metrics().Registry.Handler())
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			fmt.Fprintln(w, "ok")
		})
		tsrv = &http.Server{Addr: telemetry, Handler: mux}
		tln, err := net.Listen("tcp", telemetry)
		if err != nil {
			return fmt.Errorf("telemetry listen %s: %w", telemetry, err)
		}
		log.Printf("profiled: telemetry on http://%s/metrics", tln.Addr())
		go func() {
			if err := tsrv.Serve(tln); err != nil && err != http.ErrServerClosed {
				log.Printf("profiled: telemetry server: %v", err)
			}
		}()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		return err
	case s := <-sig:
		log.Printf("profiled: %v: draining sessions (deadline %v)", s, drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	go func() {
		<-sig // a second signal force-closes immediately
		cancel()
	}()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("profiled: forced shutdown: %v", err)
	} else {
		log.Printf("profiled: drained cleanly")
	}
	if tsrv != nil {
		tsrv.Close()
	}
	if err := <-serveErr; err != nil {
		return err
	}
	return nil
}
