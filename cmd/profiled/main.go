// Command profiled is the profiling daemon: it serves the hwprof wire
// protocol over TCP, running one sharded profiling engine per client
// session and returning interval profiles as the stream crosses interval
// boundaries, with telemetry exposed over HTTP in Prometheus text form.
//
// Usage:
//
//	profiled -listen :9123 -telemetry :9124
//	profiled -listen :9123 -shed -queue 32 -max-sessions 512
//	profiled -listen :9123 -budget 64 -shed -shed-high 24 -shed-low 8 -resume-grace 1m
//	profiled -listen :9123 -publish -machine-id m1 -epoch-length 10000
//	profiled -listen :9123 -journal-dir /var/lib/profiled -journal-sync interval
//	profiled -listen :9123 -elastic -shed -tenant-budget 8
//
// With -journal-dir every session mirrors its accepted batches and
// interval boundaries into a per-session write-ahead journal; a restarted
// daemon replays the journals, re-parks the sessions, and reconnecting
// clients resume bit-identically across the crash. -journal-sync picks the
// durability barrier (none, interval, or batch); -tenant-rate bounds how
// fast one remote host may open new sessions.
//
// With -publish the daemon additionally merges the interval profiles of
// epoch-aligned sessions (marked sessions, or sessions whose interval
// length equals -epoch-length) into per-epoch machine profiles, and serves
// them to aggd subscribers over the same wire port.
//
// Admission is budgeted by estimated engine cost (-budget, in units of a
// reference 10k-interval one-shard 2048-entry session); -tenant-budget
// additionally slices that budget per remote host. Under the -shed policy a
// hysteresis gate engages at -shed-high queued batches and disengages at
// -shed-low. Disconnected sessions stay resumable for -resume-grace, so
// clients reconnect and continue bit-identically.
//
// With -elastic each v3 session runs an online controller that resizes its
// engine live — interval length, table size, shard count — under queue and
// shed pressure, descending an explicit degradation ladder (shed → coarsen
// → shrink → park) and restoring when calm. Every resize happens at an
// interval boundary through a journaled park-and-restage cycle, so the
// profile stream stays bit-identical to a cold start at that offset.
//
// SIGINT/SIGTERM drain gracefully: every session's queued batches are
// profiled, its final partial profile and goodbye are sent, and the process
// exits 0. A second signal — or the -drain-timeout deadline — force-closes
// whatever remains.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hwprof/internal/journal"
	"hwprof/internal/server"
)

func main() {
	var (
		listen       = flag.String("listen", ":9123", "TCP address to serve the wire protocol on")
		telemetry    = flag.String("telemetry", ":9124", "HTTP address for /metrics and /healthz; empty disables")
		queue        = flag.Int("queue", server.DefaultQueueDepth, "per-session queue depth in batches")
		maxSessions  = flag.Int("max-sessions", server.DefaultMaxSessions, "maximum concurrent sessions (live + parked)")
		maxShards    = flag.Int("max-shards", server.DefaultMaxShards, "clamp on per-session shard count")
		budget       = flag.Float64("budget", server.DefaultCostBudget, "admission cost budget in reference-session units")
		shed         = flag.Bool("shed", false, "shed (drop and count) batches when a session queue is full instead of blocking the stream")
		shedHigh     = flag.Int("shed-high", 0, "queue length that engages the shed gate (0: 3/4 of -queue)")
		shedLow      = flag.Int("shed-low", 0, "queue length that disengages the shed gate (0: 1/4 of -queue)")
		resumeGrace  = flag.Duration("resume-grace", server.DefaultResumeGrace, "how long a disconnected session stays resumable (negative disables resume)")
		resumeWindow = flag.Int("resume-window", server.DefaultResumeWindow, "profiles retained per session for resend on resume")
		readTimeout  = flag.Duration("read-timeout", server.DefaultReadTimeout, "per-read wire deadline (negative disables)")
		writeTimeout = flag.Duration("write-timeout", server.DefaultWriteTimeout, "per-write wire deadline (negative disables)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown deadline before force-closing sessions")
		quiet        = flag.Bool("quiet", false, "suppress per-session log lines")

		publish       = flag.Bool("publish", false, "publish per-epoch machine profiles for aggd subscribers")
		machineID     = flag.String("machine-id", server.DefaultMachineID, "this machine's name in published epochs")
		epochLength   = flag.Uint64("epoch-length", server.DefaultEpochLength, "fleet events-per-epoch contract; sessions matching it publish")
		epochDeadline = flag.Duration("epoch-deadline", 0, "straggler deadline before an epoch closes partial (0: default; set well above reconnect time; negative disables)")
		epochWindow   = flag.Int("epoch-window", 0, "open epochs before force-close (0: default)")
		epochRetain   = flag.Int("epoch-retain", 0, "closed epochs retained for subscriber resubscription (0: default)")

		journalDir     = flag.String("journal-dir", "", "directory for per-session write-ahead journals; empty disables crash durability")
		journalSync    = flag.String("journal-sync", "interval", "journal durability barrier: none, interval, or batch")
		journalSegment = flag.Int64("journal-segment-bytes", 0, "journal segment rotation threshold in bytes (0: default)")
		tenantRate     = flag.Float64("tenant-rate", 0, "per-tenant session admission rate in sessions/s (0 disables)")
		tenantBurst    = flag.Float64("tenant-burst", 0, "per-tenant admission burst (0: ceil of -tenant-rate)")
		tenantBudget   = flag.Float64("tenant-budget", 0, "per-tenant slice of the cost budget in reference-session units (0 disables)")

		elastic        = flag.Bool("elastic", false, "run the per-session online controller: live resizes and the degradation ladder (requires resume and v3 clients)")
		elasticEngage  = flag.Int("elastic-engage", 0, "boundaries of sustained pressure before the controller acts (0: default)")
		elasticRelease = flag.Int("elastic-release", 0, "calm boundaries before the controller de-escalates (0: default)")
		elasticSettle  = flag.Int("elastic-settle", 0, "cooldown boundaries after every committed action (0: default)")
	)
	flag.Parse()
	sync, err := journal.ParseSync(*journalSync)
	if err != nil {
		fmt.Fprintln(os.Stderr, "profiled:", err)
		os.Exit(2)
	}
	if *journalDir != "" && *resumeGrace < 0 {
		fmt.Fprintln(os.Stderr, "profiled: -journal-dir requires resume (-resume-grace must not be negative): recovery re-parks sessions for their clients to resume")
		os.Exit(2)
	}
	cfg := server.Config{
		QueueDepth:    *queue,
		MaxSessions:   *maxSessions,
		MaxShards:     *maxShards,
		CostBudget:    *budget,
		Shed:          *shed,
		ShedHighWater: *shedHigh,
		ShedLowWater:  *shedLow,
		ResumeGrace:   *resumeGrace,
		ResumeWindow:  *resumeWindow,
		ReadTimeout:   *readTimeout,
		WriteTimeout:  *writeTimeout,
		Publish:       *publish,
		MachineID:     *machineID,
		EpochLength:   *epochLength,
		EpochDeadline: *epochDeadline,
		EpochWindow:   *epochWindow,
		EpochRetain:   *epochRetain,

		JournalDir:          *journalDir,
		JournalSync:         sync,
		JournalSegmentBytes: *journalSegment,
		TenantRate:          *tenantRate,
		TenantBurst:         *tenantBurst,
		TenantBudget:        *tenantBudget,

		Elastic:        *elastic,
		ElasticEngage:  *elasticEngage,
		ElasticRelease: *elasticRelease,
		ElasticSettle:  *elasticSettle,
	}
	if *elastic && *resumeGrace < 0 {
		fmt.Fprintln(os.Stderr, "profiled: -elastic requires resume (-resume-grace must not be negative): ladder rung 4 parks sessions for their clients to resume")
		os.Exit(2)
	}
	if err := run(*listen, *telemetry, cfg, *drainTimeout, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "profiled:", err)
		os.Exit(1)
	}
}

func run(listen, telemetry string, cfg server.Config, drainTimeout time.Duration, quiet bool) error {
	if !quiet {
		cfg.Logf = log.Printf
	}
	srv := server.New(cfg)
	if cfg.JournalDir != "" {
		// Recovery runs before the listener opens: reconnecting clients
		// must find their sessions already re-parked.
		n, err := srv.Recover()
		if err != nil {
			return fmt.Errorf("recovering journals: %w", err)
		}
		log.Printf("profiled: journaling to %s (sync %v), %d session(s) recovered", cfg.JournalDir, cfg.JournalSync, n)
	}

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return fmt.Errorf("listen %s: %w", listen, err)
	}
	log.Printf("profiled: serving wire protocol on %s", ln.Addr())
	if cfg.Publish {
		log.Printf("profiled: publishing epochs as %q, epoch length %d", cfg.MachineID, cfg.EpochLength)
	}

	var tsrv *http.Server
	if telemetry != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", srv.Metrics().Registry.Handler())
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			fmt.Fprintln(w, "ok")
		})
		tsrv = &http.Server{Addr: telemetry, Handler: mux}
		tln, err := net.Listen("tcp", telemetry)
		if err != nil {
			return fmt.Errorf("telemetry listen %s: %w", telemetry, err)
		}
		log.Printf("profiled: telemetry on http://%s/metrics", tln.Addr())
		go func() {
			if err := tsrv.Serve(tln); err != nil && err != http.ErrServerClosed {
				log.Printf("profiled: telemetry server: %v", err)
			}
		}()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		return err
	case s := <-sig:
		log.Printf("profiled: %v: draining sessions (deadline %v)", s, drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	go func() {
		<-sig // a second signal force-closes immediately
		cancel()
	}()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("profiled: forced shutdown: %v", err)
	} else {
		log.Printf("profiled: drained cleanly")
	}
	if tsrv != nil {
		tsrv.Close()
	}
	if err := <-serveErr; err != nil {
		return err
	}
	return nil
}
