// Command profile runs a profiler configuration over a tuple stream (a
// trace file, a synthetic workload, or an instrumented VM program),
// reports the per-interval candidates it catches, and — when the stream is
// replayable — the error against a perfect profiler.
//
// Usage:
//
//	profile -workload gcc -intervals 10
//	profile -trace gcc.trace -tables 4 -conservative
//	profile -program interp -kind edge -interval 10000 -threshold 1
//	profile -workload gcc -shards 4 -exact=false -reuse-profiles   # concurrent, throughput mode
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"

	"hwprof"
)

func main() {
	var (
		traceFile = flag.String("trace", "", "read tuples from this trace file")
		workload  = flag.String("workload", "", "generate tuples from this synthetic benchmark analog")
		program   = flag.String("program", "", "generate tuples from this VM program (looped)")
		kindName  = flag.String("kind", "value", "tuple kind for -workload/-program: value or edge")
		seed      = flag.Uint64("seed", 1, "workload seed")

		interval  = flag.Uint64("interval", 10_000, "profile interval length in events")
		threshold = flag.Float64("threshold", 1, "candidate threshold in percent of interval length")
		entries   = flag.Int("entries", 2048, "total hash-table counters")
		tables    = flag.Int("tables", 4, "number of hash tables")
		conserv   = flag.Bool("conservative", true, "use conservative update (C1)")
		reset     = flag.Bool("reset", false, "reset counters on promotion (R1)")
		retain    = flag.Bool("retain", true, "retain candidates across intervals (P1)")

		intervals = flag.Int("intervals", 5, "number of profile intervals to run")
		top       = flag.Int("top", 10, "candidates to print per interval")

		shards = flag.Int("shards", 1, "profile concurrently over this many shards (storage is split across them)")
		batch  = flag.Int("batch", 0, "tuple batch size of the streaming driver (default 512)")
		exact  = flag.Bool("exact", true, "run the perfect profiler alongside and report per-interval error")
		reuse  = flag.Bool("reuse-profiles", false, "recycle interval-profile maps (allocation-free boundaries; maps are invalid after each interval is printed)")
	)
	flag.Parse()
	if err := run(*traceFile, *workload, *program, *kindName, *seed, *interval,
		*threshold, *entries, *tables, *conserv, *reset, *retain, *intervals, *top,
		*shards, *batch, *exact, *reuse); err != nil {
		// Trace faults get a classified message: whatever profiles were
		// reported before the fault are real, but the stream they came from
		// is damaged and the run must fail loudly rather than look complete.
		switch {
		case errors.Is(err, hwprof.ErrTraceTruncated):
			fmt.Fprintf(os.Stderr, "profile: input trace is truncated (cut-off file or interrupted write): %v\n", err)
		case errors.Is(err, hwprof.ErrTraceCorrupt):
			fmt.Fprintf(os.Stderr, "profile: input trace is corrupt (checksum or framing mismatch): %v\n", err)
		default:
			fmt.Fprintln(os.Stderr, "profile:", err)
		}
		os.Exit(1)
	}
}

func run(traceFile, workload, program, kindName string, seed, interval uint64,
	threshold float64, entries, tables int, conserv, reset, retain bool,
	intervals, top, shards, batch int, exact, reuse bool) error {

	var kind hwprof.Kind
	switch kindName {
	case "value":
		kind = hwprof.KindValue
	case "edge":
		kind = hwprof.KindEdge
	default:
		return fmt.Errorf("unknown kind %q", kindName)
	}

	var src hwprof.Source
	switch {
	case traceFile != "":
		f, err := os.Open(traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		r, err := hwprof.OpenTrace(f)
		if err != nil {
			return err
		}
		src = r
	case workload != "":
		g, err := hwprof.NewWorkload(workload, kind, seed)
		if err != nil {
			return err
		}
		src = g
	case program != "":
		p, err := hwprof.NewProgramSource(program, kind, true)
		if err != nil {
			return err
		}
		src = p
	default:
		return fmt.Errorf("one of -trace, -workload or -program is required")
	}

	cfg := hwprof.Config{
		IntervalLength:     interval,
		ThresholdPercent:   threshold,
		TotalEntries:       entries,
		NumTables:          tables,
		CounterWidth:       24,
		ConservativeUpdate: conserv,
		ResetOnPromote:     reset,
		Retain:             retain,
		Seed:               seed + 7,
	}
	// Build the profiler: one MultiHash, or the sharded concurrent engine
	// with the same aggregate storage split across shards.
	if shards < 1 {
		return fmt.Errorf("-shards must be >= 1, got %d", shards)
	}
	var p hwprof.StreamProfiler
	if shards > 1 {
		sp, err := hwprof.NewSharded(cfg, shards)
		if err != nil {
			return err
		}
		defer sp.Close()
		p = sp
	} else {
		mh, err := hwprof.New(cfg)
		if err != nil {
			return err
		}
		p = mh
	}
	bytes, err := hwprof.StorageBytes(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("configuration %v, %d shard(s), storage %d bytes, threshold count %d\n",
		cfg, shards, bytes, cfg.ThresholdCount())

	thresh := cfg.ThresholdCount()
	// -reuse-profiles is safe here because printTop finishes with each map
	// inside the callback; nothing retains an interval's profile after it.
	rc := hwprof.RunConfig{IntervalLength: interval, BatchSize: batch, NoPerfect: !exact, ReuseProfiles: reuse}
	n, err := hwprof.RunWith(hwprof.Limit(src, interval*uint64(intervals)), p, rc,
		func(i int, perfect, hardware map[hwprof.Tuple]uint64) {
			if perfect != nil {
				iv := hwprof.EvalInterval(perfect, hardware, thresh)
				fmt.Printf("\ninterval %d: error %.2f%% (FP %.2f / FN %.2f / NP %.2f / NN %.2f), %d perfect candidates\n",
					i, iv.Total*100, iv.FalsePos*100, iv.FalseNeg*100,
					iv.NeutralPos*100, iv.NeutralNeg*100, iv.PerfectCandidates)
			} else {
				fmt.Printf("\ninterval %d:\n", i)
			}
			printTop(hardware, thresh, top)
		})
	if err != nil {
		return err
	}
	if n < intervals {
		fmt.Printf("\nstream ended after %d of %d intervals\n", n, intervals)
	}
	return nil
}

// printTop lists the interval's hottest captured candidates.
func printTop(hardware map[hwprof.Tuple]uint64, thresh uint64, top int) {
	type entry struct {
		t hwprof.Tuple
		c uint64
	}
	var cands []entry
	for t, c := range hardware {
		if c >= thresh {
			cands = append(cands, entry{t, c})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].c != cands[j].c {
			return cands[i].c > cands[j].c
		}
		if cands[i].t.A != cands[j].t.A {
			return cands[i].t.A < cands[j].t.A
		}
		return cands[i].t.B < cands[j].t.B
	})
	if len(cands) > top {
		cands = cands[:top]
	}
	for _, e := range cands {
		fmt.Printf("  <%#x, %#x>  ×%d\n", e.t.A, e.t.B, e.c)
	}
}
