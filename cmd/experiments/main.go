// Command experiments regenerates the paper's results figures on the
// synthetic benchmark suite.
//
// Usage:
//
//	experiments -fig all
//	experiments -fig 12 -long-intervals 20
//	experiments -fig 7 -benchmarks gcc,go -seed 3
//
// Figure ids: 4, 5, 6, 7, 9, 10, 11, 12, 13, 14, area, stratified, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hwprof/internal/expt"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "figure to regenerate (4,5,6,7,9,10,11,12,13,14,area,stratified,adaptive,vm,all)")
		seed     = flag.Uint64("seed", 1, "workload seed")
		shortIvs = flag.Int("short-intervals", 0, "profile intervals per 10K-regime run (default 50)")
		longIvs  = flag.Int("long-intervals", 0, "profile intervals per 1M-regime run (default 5)")
		benchs   = flag.String("benchmarks", "", "comma-separated benchmark subset (default all)")
		batch    = flag.Int("batch", 0, "tuple batch size of the streaming drivers (default 512; results are batch-size independent)")
	)
	flag.Parse()

	opts := expt.Options{
		Seed:           *seed,
		ShortIntervals: *shortIvs,
		LongIntervals:  *longIvs,
		BatchSize:      *batch,
	}
	if *benchs != "" {
		opts.Benchmarks = strings.Split(*benchs, ",")
	}

	figs := strings.Split(*fig, ",")
	if *fig == "all" {
		figs = []string{"4", "5", "6", "7", "9", "10", "11", "12", "13", "14", "area", "stratified", "adaptive", "vm"}
	}
	for _, f := range figs {
		if err := run(strings.TrimSpace(f), opts); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: figure %s: %v\n", f, err)
			os.Exit(1)
		}
	}
}

func run(fig string, opts expt.Options) error {
	switch fig {
	case "4":
		t, err := expt.Fig4(opts)
		if err != nil {
			return err
		}
		fmt.Println(t.String())
	case "5":
		t1, t01, err := expt.Fig5(opts)
		if err != nil {
			return err
		}
		fmt.Println(t1.String())
		fmt.Println(t01.String())
	case "6":
		short, long, err := expt.Fig6(opts)
		if err != nil {
			return err
		}
		fmt.Println(expt.SeriesSummary("Figure 6 (top): candidate variation % between 10K intervals", short).String())
		fmt.Println(expt.SeriesSummary("Figure 6 (bottom): candidate variation % between 1M intervals", long).String())
	case "7":
		short, long, err := expt.Fig7(opts)
		if err != nil {
			return err
		}
		fmt.Println(short.String())
		fmt.Println(long.String())
	case "9":
		t, err := expt.Fig9()
		if err != nil {
			return err
		}
		fmt.Println(t.String())
	case "10":
		t, err := expt.Fig10(opts)
		if err != nil {
			return err
		}
		fmt.Println(t.String())
	case "11":
		t, err := expt.Fig11(opts)
		if err != nil {
			return err
		}
		fmt.Println(t.String())
	case "12":
		short, long, err := expt.Fig12(opts)
		if err != nil {
			return err
		}
		fmt.Println(short.String())
		fmt.Println(long.String())
	case "13":
		bsh, multi, err := expt.Fig13(opts)
		if err != nil {
			return err
		}
		fmt.Println("Figure 13 (left): per-interval error %, best single hash (R1,P1), 1M/0.1%")
		for _, s := range bsh {
			fmt.Println("  " + s.String())
		}
		fmt.Println("Figure 13 (right): per-interval error %, multi-hash 4 tables (C1,R0,P1), 1M/0.1%")
		for _, s := range multi {
			fmt.Println("  " + s.String())
		}
		fmt.Println()
	case "14":
		short, long, err := expt.Fig14(opts)
		if err != nil {
			return err
		}
		fmt.Println(short.String())
		fmt.Println(long.String())
	case "area":
		t, err := expt.AreaTable()
		if err != nil {
			return err
		}
		fmt.Println(t.String())
	case "stratified":
		t, err := expt.StratifiedCompare(opts)
		if err != nil {
			return err
		}
		fmt.Println(t.String())
	case "adaptive":
		t, err := expt.AdaptiveTable(opts)
		if err != nil {
			return err
		}
		fmt.Println(t.String())
	case "vm":
		t, err := expt.VMTable(opts)
		if err != nil {
			return err
		}
		fmt.Println(t.String())
	default:
		return fmt.Errorf("unknown figure %q", fig)
	}
	return nil
}
