// Command aggd is the fleet aggregation tier: it subscribes to the
// per-epoch profiles of N children — profiled daemons run with -publish,
// or other aggd instances — merges each epoch across the fleet under the
// watermark protocol, and serves the merged epochs to its own subscribers
// over the same wire Subscribe surface. Trees compose: point an aggd at
// other aggds for a multi-level fleet, and profctl -subscribe at the root.
//
// Usage:
//
//	aggd -listen :9223 -children m1:9123,m2:9123,m3:9123 -epoch-length 10000
//	aggd -listen :9323 -children mid1:9223,mid2:9223 -source root
//
// Epochs are aligned by interval index, never wall clock. An epoch closes
// when every child has reported it, or when the -deadline straggler
// deadline fires — closing it partial, with the missing children named in
// a typed marker that propagates to the root. Child links reconnect under
// jittered exponential backoff forever: a down child surfaces as missing
// epochs, not a dead link.
//
// SIGINT/SIGTERM shut down gracefully; telemetry (per-child lag,
// reconnects, watermark, partial counts) is served over HTTP in
// Prometheus text form.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hwprof/internal/agg"
)

func main() {
	var (
		listen       = flag.String("listen", ":9223", "TCP address to serve merged epochs on")
		telemetry    = flag.String("telemetry", ":9224", "HTTP address for /metrics and /healthz; empty disables")
		children     = flag.String("children", "", "comma-separated child publishers (host:port each): profiled -publish daemons or other aggds")
		source       = flag.String("source", "aggd", "this aggregator's name in the epochs it emits")
		epochLength  = flag.Uint64("epoch-length", 10_000, "fleet events-per-epoch contract, validated against every child")
		deadline     = flag.Duration("deadline", 0, "straggler deadline before an epoch closes partial (0: default; set well above child reconnect time; negative disables)")
		window       = flag.Int("window", 0, "open epochs before force-close (0: default)")
		retain       = flag.Int("retain", 0, "closed epochs retained for subscriber resubscription (0: default)")
		dialTimeout  = flag.Duration("dial-timeout", 0, "per-connect deadline on child links (0: default)")
		backoffBase  = flag.Duration("backoff", 0, "first child reconnect delay, doubling with jitter (0: default)")
		backoffMax   = flag.Duration("backoff-max", 0, "child reconnect delay cap (0: default)")
		readTimeout  = flag.Duration("read-timeout", 0, "per-read wire deadline (0 disables)")
		writeTimeout = flag.Duration("write-timeout", 0, "per-write wire deadline (0 disables)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown deadline before force-closing subscribers")
		quiet        = flag.Bool("quiet", false, "suppress lifecycle log lines")
	)
	flag.Parse()
	var childList []string
	for _, c := range strings.Split(*children, ",") {
		if c = strings.TrimSpace(c); c != "" {
			childList = append(childList, c)
		}
	}
	cfg := agg.Config{
		Source:       *source,
		Children:     childList,
		EpochLength:  *epochLength,
		Window:       *window,
		Deadline:     *deadline,
		Retain:       *retain,
		DialTimeout:  *dialTimeout,
		BackoffBase:  *backoffBase,
		BackoffMax:   *backoffMax,
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
	}
	if err := run(*listen, *telemetry, cfg, *drainTimeout, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "aggd:", err)
		os.Exit(1)
	}
}

func run(listen, telemetry string, cfg agg.Config, drainTimeout time.Duration, quiet bool) error {
	if !quiet {
		cfg.Logf = log.Printf
	}
	a, err := agg.New(cfg)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return fmt.Errorf("listen %s: %w", listen, err)
	}
	log.Printf("aggd: serving merged epochs on %s as %q (epoch length %d, %d children)",
		ln.Addr(), cfg.Source, cfg.EpochLength, len(cfg.Children))

	var tsrv *http.Server
	if telemetry != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", a.Metrics().Registry.Handler())
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			fmt.Fprintln(w, "ok")
		})
		tsrv = &http.Server{Addr: telemetry, Handler: mux}
		tln, err := net.Listen("tcp", telemetry)
		if err != nil {
			return fmt.Errorf("telemetry listen %s: %w", telemetry, err)
		}
		log.Printf("aggd: telemetry on http://%s/metrics", tln.Addr())
		go func() {
			if err := tsrv.Serve(tln); err != nil && err != http.ErrServerClosed {
				log.Printf("aggd: telemetry server: %v", err)
			}
		}()
	}

	a.Start()
	serveErr := make(chan error, 1)
	go func() { serveErr <- a.Serve(ln) }()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		return err
	case s := <-sig:
		log.Printf("aggd: %v: shutting down (deadline %v)", s, drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	go func() {
		<-sig // a second signal force-closes immediately
		cancel()
	}()
	if err := a.Shutdown(ctx); err != nil {
		log.Printf("aggd: forced shutdown: %v", err)
	} else {
		log.Printf("aggd: shut down cleanly")
	}
	if tsrv != nil {
		tsrv.Close()
	}
	if err := <-serveErr; err != nil {
		return err
	}
	return nil
}
