// Command loadgen is a load and chaos harness for the profiled daemon: it
// dials N concurrent sessions, streams synthetic workloads at a
// configurable event rate, and optionally injects connection faults —
// mid-frame disconnects and byte corruption — on a schedule, exercising
// the daemon's admission control, shed gate, and resume path under
// pressure. It reports per-session outcomes, aggregate throughput,
// client-observed interval-latency percentiles, shed rates, and reconnect
// counts; with -metrics it also scrapes the daemon's Prometheus endpoint
// and echoes the overload counters.
//
// Usage:
//
//	loadgen -addr localhost:9123 -sessions 8 -events 200000
//	loadgen -addr localhost:9123 -sessions 16 -rate 50000 -duration 30s \
//	    -hangup-every 2 -hangup-bytes 65536 -flip-every 3 \
//	    -metrics http://localhost:9124/metrics
//	loadgen -tree-daemons m1:9123,m2:9123,m3:9123 -tree-root localhost:9323 \
//	    -events 100000 -hangup-every 2
//	loadgen -kill-daemon-at 50000 -daemon-bin ./profiled -sessions 4 \
//	    -events 100000 -daemon-journal-sync batch -daemon-telemetry :9124
//	loadgen -addr localhost:9123 -sessions 4 -scenario pack.scn
//	loadgen -addr localhost:9123 -sessions 4 -events 300000 -verify \
//	    -hangup-every 3 -flip-every 4
//
// With -verify, every session also tees its accepted stream into memory
// and mirrors it through local engines, requiring the daemon's delivered
// profiles bit-identical. Against an elastic daemon the session's notice
// trail splits the mirror: each geometry-changing notice (live resize,
// ladder coarsen/shrink/restore) cold-starts a fresh local engine at the
// announced shape and stream boundary — the park-and-restage contract,
// checked end to end from the client side. Sessions whose profiles are
// lossy (shed policy) or whose geometry changed invisibly (a daemon crash
// lost the notice) are reported and skipped, not failed.
//
// With -scenario, each session streams the named scenario file instead of
// a flat workload: the engine geometry, stream length, per-phase rates and
// tenant mixes all come from the file (session i streams the scenario
// under seed+i so the daemon sees distinct streams of the same shape), and
// the scenario's fault windows arm connection faults — hangup or one-byte
// corruption — when the session's stream crosses them. Fault windows
// never change stream content, only transport behavior.
//
// Sessions refused admission are reported and tolerated (an overloaded
// daemon refusing work is correct behavior); any other session failure
// makes loadgen exit non-zero.
//
// With -kill-daemon-at, loadgen owns the daemon's lifecycle instead of
// dialing an external one: it spawns -daemon-bin listening on -addr with a
// write-ahead journal, streams every session to the given event offset,
// SIGKILLs the daemon mid-stream, restarts it on the same address — the
// restart replays the journals and re-parks the sessions — and requires
// every reconnecting session's profiles to come out bit-identical to an
// uninterrupted local run. With -daemon-telemetry set it also scrapes the
// restarted daemon and asserts the journal recovery counters are clean.
//
// With -tree-daemons, loadgen instead drives an aggregation tree: it opens
// one marked session per publishing daemon, fans a single union workload
// out across them by shard route (so the fleet behaves as one sharded
// engine), places an epoch mark on every session at each -interval
// boundary, subscribes to the -tree-root aggregator, and asserts that
// every merged fleet epoch is bit-identical to a local single-engine run
// over the union stream. The chaos flags still apply, so a hangup mid-run
// proves bit-identity survives a daemon link dying and resuming.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"hwprof"
	"hwprof/internal/faultinject"
	"hwprof/internal/scenario"
	"hwprof/internal/shard"
	"hwprof/internal/wire"
)

func main() {
	var (
		addr    = flag.String("addr", "localhost:9123", "profiled daemon address (host:port)")
		metrics = flag.String("metrics", "", "daemon Prometheus endpoint to scrape after the run (e.g. http://localhost:9124/metrics)")

		sessions = flag.Int("sessions", 4, "concurrent sessions to dial")
		events   = flag.Uint64("events", 0, "events per session (0: derive from -rate × -duration, else 100000)")
		rate     = flag.Float64("rate", 0, "target events/sec per session (0: unthrottled)")
		duration = flag.Duration("duration", 10*time.Second, "with -events 0 and -rate set: stream for this long")
		workload = flag.String("workload", "gcc", "synthetic workload streamed by every session")
		scnPath  = flag.String("scenario", "", "scenario file streamed by every session; overrides -workload/-events/-rate/-interval/-entries/-tables/-shards/-batch and the chaos flags with the file's own schedule")
		seed     = flag.Uint64("seed", 1, "base seed; session i uses seed+i")

		interval = flag.Uint64("interval", 10_000, "profile interval length in events")
		entries  = flag.Int("entries", 2048, "total hash-table counters per session")
		tables   = flag.Int("tables", 4, "number of hash tables")
		shards   = flag.Int("shards", 1, "shards per session")
		batch    = flag.Int("batch", 0, "tuples per batch frame (default 512)")

		hangEvery = flag.Int("hangup-every", 0, "kill every k-th connection of each session mid-frame (0: off)")
		hangBytes = flag.Int64("hangup-bytes", 65536, "bytes into a killed connection to cut it")
		flipEvery = flag.Int("flip-every", 0, "corrupt one byte on every k-th connection of each session (0: off)")
		flipBytes = flag.Int64("flip-bytes", 8192, "bytes into a corrupted connection to flip")

		backoff  = flag.Duration("backoff-base", 20*time.Millisecond, "reconnect backoff base delay")
		attempts = flag.Int("max-attempts", 10, "reconnect attempts per outage (-1: unlimited)")

		verify = flag.Bool("verify", false, "mirror every session's accepted stream through local engines and require the daemon's profiles bit-identical; resize/degrade notices split the mirror into cold-started segments, so this holds against an elastic daemon too (lossy shed-policy sessions and geometry changes hidden by a daemon crash are reported and skipped)")

		treeDaemons = flag.String("tree-daemons", "", "comma-separated profiled -publish daemons; enables tree mode: one marked session per daemon, a union stream fanned out by shard route")
		treeRoot    = flag.String("tree-root", "", "root aggregator to subscribe to for merged fleet epochs (tree mode)")

		killAt          = flag.Uint64("kill-daemon-at", 0, "crash mode: per-session event offset at which the spawned daemon is SIGKILLed and restarted (0: off)")
		daemonBin       = flag.String("daemon-bin", "profiled", "crash mode: profiled binary to spawn on -addr")
		daemonJournal   = flag.String("daemon-journal-dir", "", "crash mode: journal directory handed to the spawned daemon (empty: a temp dir, removed after the run)")
		daemonSync      = flag.String("daemon-journal-sync", "batch", "crash mode: -journal-sync handed to the spawned daemon")
		daemonTelemetry = flag.String("daemon-telemetry", "", "crash mode: -telemetry address handed to the spawned daemon (empty: disabled)")
	)
	flag.Parse()

	perSession := *events
	if perSession == 0 {
		if *rate > 0 {
			perSession = uint64(*rate * duration.Seconds())
		} else {
			perSession = 100_000
		}
	}
	// Fault offsets inside the handshake/hello prologue would kill the
	// session before it exists; keep them past it.
	if *hangBytes < 256 {
		*hangBytes = 256
	}
	if *flipBytes < 256 {
		*flipBytes = 256
	}

	g := &generator{
		addr: *addr, sessions: *sessions, events: perSession, rate: *rate,
		workload: *workload, seed: *seed,
		cfg: hwprof.Config{
			IntervalLength:     *interval,
			ThresholdPercent:   1,
			TotalEntries:       *entries,
			NumTables:          *tables,
			CounterWidth:       24,
			ConservativeUpdate: true,
			Retain:             true,
		},
		shards: *shards, batch: *batch,
		hangEvery: *hangEvery, hangBytes: *hangBytes,
		flipEvery: *flipEvery, flipBytes: *flipBytes,
		backoff: *backoff, attempts: *attempts,
		verify: *verify,
	}
	if *scnPath != "" {
		if *killAt > 0 || *treeDaemons != "" {
			fmt.Fprintln(os.Stderr, "loadgen: -scenario is mutually exclusive with crash and tree mode")
			os.Exit(1)
		}
		text, err := os.ReadFile(*scnPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		sc, err := scenario.Parse(string(text))
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		// The scenario file is the whole run description: engine geometry,
		// stream length, pacing and fault schedule all come from it.
		g.scn = sc
		g.events = sc.TotalEvents()
		g.cfg = sc.Config()
		g.shards, g.batch = sc.Shards, sc.Batch
		g.rate = 0
		g.hangEvery, g.flipEvery = 0, 0
		g.workload = "scenario " + sc.Name
	}
	if *killAt > 0 {
		if *treeDaemons != "" {
			fmt.Fprintln(os.Stderr, "loadgen: crash mode and tree mode are mutually exclusive")
			os.Exit(1)
		}
		if *killAt >= perSession {
			fmt.Fprintf(os.Stderr, "loadgen: -kill-daemon-at %d must land mid-stream (< %d events per session)\n", *killAt, perSession)
			os.Exit(1)
		}
		dir, tmp := *daemonJournal, false
		if dir == "" {
			var err error
			if dir, err = os.MkdirTemp("", "loadgen-journal-"); err != nil {
				fmt.Fprintln(os.Stderr, "loadgen:", err)
				os.Exit(1)
			}
			tmp = true
		}
		metricsURL := *metrics
		if metricsURL == "" && *daemonTelemetry != "" {
			hostport := *daemonTelemetry
			if strings.HasPrefix(hostport, ":") {
				hostport = "localhost" + hostport
			}
			metricsURL = "http://" + hostport + "/metrics"
		}
		d := &daemonProc{
			bin: *daemonBin, listen: *addr, telemetry: *daemonTelemetry,
			journalDir: dir, journalSync: *daemonSync,
		}
		err := g.crash(d, *killAt, metricsURL)
		if tmp {
			os.RemoveAll(dir)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		return
	}
	if *treeDaemons != "" {
		var daemons []string
		for _, d := range strings.Split(*treeDaemons, ",") {
			if d = strings.TrimSpace(d); d != "" {
				daemons = append(daemons, d)
			}
		}
		if *treeRoot == "" {
			fmt.Fprintln(os.Stderr, "loadgen: tree mode needs -tree-root")
			os.Exit(1)
		}
		err := g.tree(daemons, *treeRoot)
		if *metrics != "" {
			scrapeMetrics(*metrics)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		return
	}
	failed := g.run()
	if *metrics != "" {
		scrapeMetrics(*metrics)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d session(s) failed\n", failed)
		os.Exit(1)
	}
}

type generator struct {
	addr          string
	sessions      int
	events        uint64
	rate          float64
	workload      string
	scn           *scenario.Scenario
	seed          uint64
	cfg           hwprof.Config
	shards, batch int
	hangEvery     int
	hangBytes     int64
	flipEvery     int
	flipBytes     int64
	backoff       time.Duration
	attempts      int
	verify        bool

	mu        sync.Mutex
	latencies []float64 // seconds between consecutive profile deliveries
}

type outcome struct {
	idx        int
	intervals  int
	shed       uint64
	reconnects uint64
	resizes    uint64
	rung       int
	degrades   int
	parks      int
	verified   int    // intervals proven bit-identical under -verify
	skipped    string // why -verify could not judge this session
	refused    bool
	err        error
}

func (g *generator) run() (failed int) {
	fmt.Printf("loadgen: %d session(s) × %d events against %s", g.sessions, g.events, g.addr)
	if g.rate > 0 {
		fmt.Printf(" at %.0f events/s each", g.rate)
	}
	if g.hangEvery > 0 {
		fmt.Printf(", hangup every %d connection(s) at %d bytes", g.hangEvery, g.hangBytes)
	}
	if g.flipEvery > 0 {
		fmt.Printf(", corruption every %d connection(s) at %d bytes", g.flipEvery, g.flipBytes)
	}
	fmt.Println()

	start := time.Now()
	results := make(chan outcome, g.sessions)
	var wg sync.WaitGroup
	for i := 0; i < g.sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results <- g.session(i)
		}(i)
	}
	wg.Wait()
	close(results)
	elapsed := time.Since(start)

	var ok, refused, identical, skipped int
	var sent, shed, reconnects, resizes uint64
	var degrades, parks int
	for r := range results {
		switch {
		case r.refused:
			refused++
			fmt.Printf("session %d: %v\n", r.idx, r.err)
		case r.err != nil:
			failed++
			fmt.Printf("session %d: FAILED: %v\n", r.idx, r.err)
		default:
			ok++
			sent += g.events
			shed += r.shed
			reconnects += r.reconnects
			resizes += r.resizes
			degrades += r.degrades
			parks += r.parks
			line := fmt.Sprintf("session %d: %d interval(s), %d shed, %d reconnect(s)",
				r.idx, r.intervals, r.shed, r.reconnects)
			if r.resizes > 0 || r.degrades > 0 || r.parks > 0 || r.rung > 0 {
				line += fmt.Sprintf(", %d resize(s), rung %d, notices degrade=%d park=%d",
					r.resizes, r.rung, r.degrades, r.parks)
			}
			switch {
			case r.skipped != "":
				skipped++
				line += fmt.Sprintf(" — verify skipped: %s", r.skipped)
			case r.verified > 0 || g.verify:
				identical++
				line += fmt.Sprintf(" — %d interval(s) bit-identical to the local mirror", r.verified)
			}
			fmt.Println(line)
		}
	}

	fmt.Printf("\nsessions: %d ok, %d admission-refused, %d failed\n", ok, refused, failed)
	if sent > 0 {
		obs := sent - shed
		fmt.Printf("throughput: %.0f events/s sent, %.0f events/s profiled over %v\n",
			float64(sent)/elapsed.Seconds(), float64(obs)/elapsed.Seconds(), elapsed.Round(time.Millisecond))
		fmt.Printf("shed: %d of %d events (%.2f%%)\n", shed, sent, 100*float64(shed)/float64(sent))
		fmt.Printf("reconnects: %d\n", reconnects)
	}
	if resizes > 0 || degrades > 0 || parks > 0 {
		fmt.Printf("elastic: %d resize(s), notices degrade=%d park=%d\n", resizes, degrades, parks)
	}
	if g.verify {
		fmt.Printf("verify: %d session(s) bit-identical, %d skipped\n", identical, skipped)
	}
	g.mu.Lock()
	lat := append([]float64(nil), g.latencies...)
	g.mu.Unlock()
	if len(lat) > 0 {
		sort.Float64s(lat)
		fmt.Printf("interval latency: p50 %s  p90 %s  p99 %s  (n=%d)\n",
			fmtSeconds(percentile(lat, 0.50)), fmtSeconds(percentile(lat, 0.90)),
			fmtSeconds(percentile(lat, 0.99)), len(lat))
	}
	return failed
}

// session streams one full workload, recording inter-profile latencies.
func (g *generator) session(idx int) outcome {
	cfg := g.cfg
	dialer := g.chaosDialer(idx)
	var trigger *atomic.Pointer[faultinject.TriggerConn]
	if g.scn != nil {
		// The engine seed stays the scenario's: adversarial domains target
		// the engine's exact hash family, so every session attacks the same
		// geometry. Only the stream seed varies per session.
		if len(g.scn.Faults) > 0 {
			trigger = new(atomic.Pointer[faultinject.TriggerConn])
			dialer = triggerDialer(trigger)
		}
	} else {
		cfg.Seed = g.seed + uint64(idx)
	}
	sess, err := hwprof.DialWith(g.addr, cfg, hwprof.RemoteOptions{
		Shards:      g.shards,
		BatchSize:   g.batch,
		Reconnect:   true,
		BackoffBase: g.backoff,
		MaxAttempts: g.attempts,
		Dialer:      dialer,
	})
	if err != nil {
		return outcome{idx: idx, refused: isOverload(err), err: err}
	}
	var paced hwprof.Source
	if g.scn != nil {
		src, err := g.scn.SourceSeed(g.scn.Seed + uint64(idx))
		if err != nil {
			return outcome{idx: idx, err: err}
		}
		paced = src
		if trigger != nil {
			paced = &faultArmSource{inner: paced, faults: g.scn.Faults, conn: trigger}
		}
		for _, p := range g.scn.Phases {
			if p.Rate > 0 {
				paced = &phasePacer{inner: paced, phases: g.scn.Phases, start: time.Now()}
				break
			}
		}
	} else {
		src, err := hwprof.NewWorkload(g.workload, hwprof.KindValue, cfg.Seed)
		if err != nil {
			return outcome{idx: idx, err: err}
		}
		paced = src
		if g.rate > 0 {
			paced = &pacedSource{inner: src, rate: g.rate, start: time.Now()}
		}
	}
	stream := hwprof.Limit(paced, g.events)
	var rec *recordSource
	if g.verify {
		rec = &recordSource{inner: stream}
		stream = rec
	}
	var profs []map[hwprof.Tuple]uint64
	last := time.Time{}
	n, err := sess.Run(stream, func(_ int, counts map[hwprof.Tuple]uint64) {
		now := time.Now()
		if !last.IsZero() {
			g.mu.Lock()
			g.latencies = append(g.latencies, now.Sub(last).Seconds())
			g.mu.Unlock()
		}
		last = now
		if g.verify {
			profs = append(profs, counts)
		}
	})
	if err != nil {
		return outcome{idx: idx, err: err}
	}
	out := outcome{idx: idx, intervals: n, shed: sess.ShedEvents(),
		reconnects: sess.Reconnects(), resizes: sess.Resizes(), rung: sess.Rung()}
	trail := sess.NoticeTrail()
	for _, nt := range trail {
		switch nt.Kind {
		case hwprof.NoticeDegrade:
			out.degrades++
		case hwprof.NoticePark:
			out.parks++
		}
	}
	if g.verify {
		switch {
		case out.shed > 0:
			// Shed events never reached the daemon's engine; no local mirror
			// can reproduce lossy profiles.
			out.skipped = fmt.Sprintf("%d event(s) shed; profiles are lossy", out.shed)
		case out.resizes > geometryChanges(cfg, g.shardCount(), trail):
			// The client counted a geometry change (from a resume ack) the
			// trail does not carry — the session resumed against a restarted
			// daemon that lost its staged notices, and the mirror cannot
			// place the segment split. The opposite inequality is normal: an
			// ack coalesces several in-outage changes into one count while
			// the redelivered notices keep the trail itself complete.
			out.skipped = "a geometry change during an outage is missing from the notice trail"
		default:
			if verr := verifySession(cfg, g.shardCount(), rec.buf, profs, trail); verr != nil {
				out.err = verr
				return out
			}
			out.verified = len(profs)
		}
	}
	return out
}

// shardCount is the per-session shard count as the daemon sees it.
func (g *generator) shardCount() int {
	if g.shards < 1 {
		return 1
	}
	return g.shards
}

// recordSource tees every event the session sends into a buffer — the
// exact accepted stream (exactly-once across reconnects) that -verify
// mirrors locally.
type recordSource struct {
	inner hwprof.Source
	buf   []hwprof.Tuple
}

func (r *recordSource) Next() (hwprof.Tuple, bool) {
	tp, ok := r.inner.Next()
	if ok {
		r.buf = append(r.buf, tp)
	}
	return tp, ok
}

func (r *recordSource) Err() error { return r.inner.Err() }

// geometryChanges folds a session's notice trail from its admitted
// geometry and counts the notices that actually changed the engine shape —
// the same arithmetic the client's Resizes counter runs, so a mismatch
// between the two means a change happened that the trail does not record.
func geometryChanges(cfg hwprof.Config, shards int, trail []hwprof.RemoteNotice) uint64 {
	var n uint64
	for _, nt := range trail {
		if nt.IntervalLength == 0 {
			continue
		}
		if nt.IntervalLength != cfg.IntervalLength || nt.TotalEntries != cfg.TotalEntries ||
			nt.NumTables != cfg.NumTables || nt.Shards != shards {
			n++
		}
		cfg.IntervalLength = nt.IntervalLength
		cfg.TotalEntries = nt.TotalEntries
		cfg.NumTables = nt.NumTables
		shards = nt.Shards
	}
	return n
}

// verifySession mirrors the accepted stream through local engines and
// requires the daemon's delivered profiles bit-identical. Every notice
// that changed the session's geometry splits the stream at its Observed
// boundary, and the segment after it runs cold through a fresh engine at
// the announced shape — exactly the park-and-restage contract the daemon
// claims for elastic resizes.
func verifySession(cfg hwprof.Config, shards int, stream []hwprof.Tuple,
	got []map[hwprof.Tuple]uint64, trail []hwprof.RemoteNotice) error {

	var want []map[hwprof.Tuple]uint64
	start := uint64(0)
	for _, nt := range trail {
		if nt.IntervalLength == 0 {
			continue
		}
		if nt.IntervalLength == cfg.IntervalLength && nt.TotalEntries == cfg.TotalEntries &&
			nt.NumTables == cfg.NumTables && nt.Shards == shards {
			continue // rung-only move: the engine was not restaged
		}
		if nt.Observed < start || nt.Observed > uint64(len(stream)) {
			return fmt.Errorf("verify: notice boundary at observed %d outside the sent stream (prev split %d, %d events)",
				nt.Observed, start, len(stream))
		}
		seg, err := segmentProfiles(cfg, shards, stream[start:nt.Observed])
		if err != nil {
			return err
		}
		want = append(want, seg...)
		start = nt.Observed
		cfg.IntervalLength = nt.IntervalLength
		cfg.TotalEntries = nt.TotalEntries
		cfg.NumTables = nt.NumTables
		shards = nt.Shards
	}
	seg, err := segmentProfiles(cfg, shards, stream[start:])
	if err != nil {
		return err
	}
	want = append(want, seg...)
	if len(got) != len(want) {
		return fmt.Errorf("verify: %d interval(s) delivered, local mirror produced %d", len(got), len(want))
	}
	for i := range want {
		if !countsEqual(got[i], want[i]) {
			return fmt.Errorf("verify: interval %d diverges from the local mirror", i)
		}
	}
	return nil
}

// segmentProfiles cold-starts a local engine at the given geometry and
// runs one stream segment through it, returning every complete interval
// profile.
func segmentProfiles(cfg hwprof.Config, shards int, events []hwprof.Tuple) ([]map[hwprof.Tuple]uint64, error) {
	eng, err := hwprof.NewSharded(cfg, shards)
	if err != nil {
		return nil, fmt.Errorf("verify: local mirror engine: %w", err)
	}
	defer eng.Close()
	var out []map[hwprof.Tuple]uint64
	var n uint64
	for len(events) > 0 {
		c := uint64(len(events))
		if rem := cfg.IntervalLength - n; c > rem {
			c = rem
		}
		eng.ObserveBatch(events[:c])
		events = events[c:]
		n += c
		if n == cfg.IntervalLength {
			out = append(out, eng.EndInterval())
			n = 0
		}
	}
	return out, eng.Err()
}

// tree drives a fleet aggregation tree and checks its root against a local
// single-engine run. One marked session per daemon acts as one shard of a
// fleet-wide engine: every session runs the same n-shard configuration,
// and each union-stream tuple goes to the session its shard route picks,
// so inside daemon i only shard i sees events. Marks placed on every
// session at each -interval boundary align the fleet's epochs to union
// stream positions, which makes the merged root epoch the exact per-shard
// decomposition of a local n-shard run over the union stream — compared
// bit-for-bit here.
func (g *generator) tree(daemons []string, root string) error {
	n := len(daemons)
	epochs := int(g.events / g.cfg.IntervalLength)
	if epochs == 0 {
		return fmt.Errorf("tree mode needs -events >= -interval (%d < %d)", g.events, g.cfg.IntervalLength)
	}
	total := uint64(epochs) * g.cfg.IntervalLength
	cfg := g.cfg
	cfg.Seed = g.seed // every session shards the SAME engine: one seed, not seed+i

	fmt.Printf("loadgen: tree mode: %d epoch(s) × %d events across %d daemon(s), root %s\n",
		epochs, cfg.IntervalLength, n, root)

	// Subscribe to the root before streaming so no epoch can fall out of
	// its retention ring before we read it.
	sub, err := hwprof.Subscribe(context.Background(), root,
		hwprof.WithIntervalLength(cfg.IntervalLength))
	if err != nil {
		return fmt.Errorf("subscribe %s: %w", root, err)
	}
	defer sub.Close()
	var fleet []hwprof.EpochProfile
	collDone := make(chan struct{})
	go func() {
		defer close(collDone)
		for ep := range sub.C {
			fleet = append(fleet, ep)
			if len(fleet) >= epochs {
				return
			}
		}
	}()

	// One marked session per daemon, chaos dialer and all — session 0 gets
	// the first hangup, proving the tree survives a leaf link dying.
	ctx := context.Background()
	sessions := make([]*hwprof.RemoteSession, n)
	var profWg sync.WaitGroup
	for i, addr := range daemons {
		sess, err := hwprof.Connect(ctx, addr,
			hwprof.WithConfig(cfg), hwprof.WithShards(n), hwprof.WithBatchSize(g.batch),
			hwprof.WithMarks(),
			hwprof.WithBackoff(g.backoff, 0), hwprof.WithMaxAttempts(g.attempts),
			hwprof.WithDialer(g.chaosDialer(i)))
		if err != nil {
			return fmt.Errorf("daemon %s: %w", addr, err)
		}
		defer sess.Close()
		sessions[i] = sess
		profWg.Add(1)
		go func(s *hwprof.RemoteSession) { // keep the profile channel drained
			defer profWg.Done()
			for range s.Profiles() {
			}
		}(sess)
	}

	// Stream the union workload, routing tuple by tuple.
	src, err := hwprof.NewWorkload(g.workload, hwprof.KindValue, cfg.Seed)
	if err != nil {
		return err
	}
	var paced hwprof.Source = src
	if g.rate > 0 {
		paced = &pacedSource{inner: src, rate: g.rate, start: time.Now()}
	}
	for pos := uint64(0); pos < total; pos++ {
		t, ok := paced.Next()
		if !ok {
			return fmt.Errorf("workload ended after %d of %d events", pos, total)
		}
		i := int(shard.RouteHash(t) % uint64(n))
		if err := sessions[i].Observe(t); err != nil {
			return fmt.Errorf("daemon %s: %w", daemons[i], err)
		}
		if (pos+1)%cfg.IntervalLength == 0 {
			for i, s := range sessions {
				if err := s.Mark(); err != nil {
					return fmt.Errorf("mark daemon %s: %w", daemons[i], err)
				}
			}
		}
	}
	var reconnects uint64
	for i, s := range sessions {
		if _, err := s.Drain(); err != nil {
			return fmt.Errorf("drain daemon %s: %w", daemons[i], err)
		}
		reconnects += s.Reconnects()
	}
	profWg.Wait()
	fmt.Printf("loadgen: tree: streamed %d events, reconnects: %d\n", total, reconnects)

	// The reference: the same union stream through one local n-shard engine.
	refSrc, err := hwprof.NewWorkload(g.workload, hwprof.KindValue, cfg.Seed)
	if err != nil {
		return err
	}
	var ref []map[hwprof.Tuple]uint64
	if _, err := hwprof.Profile(ctx, hwprof.Limit(refSrc, total),
		hwprof.WithConfig(cfg), hwprof.WithShards(n),
		hwprof.OnInterval(func(_ int, _, hardware map[hwprof.Tuple]uint64) {
			ref = append(ref, hardware)
		})); err != nil {
		return fmt.Errorf("local reference run: %w", err)
	}

	select {
	case <-collDone:
	case <-time.After(60 * time.Second):
		sub.Close()
		<-collDone
		return fmt.Errorf("timed out waiting for fleet epochs: got %d of %d", len(fleet), epochs)
	}
	sub.Close()
	if err := sub.Err(); err != nil {
		return fmt.Errorf("root subscription: %w", err)
	}
	if gaps := sub.Gaps(); gaps > 0 {
		return fmt.Errorf("root subscription skipped %d epoch(s) beyond retention", gaps)
	}

	bad := 0
	for _, ep := range fleet {
		if ep.Partial {
			bad++
			fmt.Printf("loadgen: tree: epoch %d PARTIAL, missing %v\n", ep.Epoch, ep.Missing)
			continue
		}
		if ep.Epoch >= uint64(len(ref)) || !countsEqual(ep.Counts, ref[ep.Epoch]) {
			bad++
			fmt.Printf("loadgen: tree: epoch %d MISMATCH: root has %d tuple(s), reference %d\n",
				ep.Epoch, len(ep.Counts), len(ref[ep.Epoch]))
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d of %d fleet epoch(s) diverged from the local union run", bad, epochs)
	}
	fmt.Printf("loadgen: tree: root profile bit-identical to single-engine union run (%d epochs, %d daemons)\n",
		epochs, n)
	return nil
}

// daemonProc is a profiled process loadgen owns in crash mode: spawned,
// SIGKILLed mid-stream, and respawned on the same address with the same
// journal so the restart replays it.
type daemonProc struct {
	bin, listen, telemetry  string
	journalDir, journalSync string

	cmd    *exec.Cmd
	exited chan error
}

func (d *daemonProc) args() []string {
	return []string{
		"-listen", d.listen,
		"-telemetry", d.telemetry,
		"-journal-dir", d.journalDir,
		"-journal-sync", d.journalSync,
		"-resume-grace", "1m",
	}
}

// start spawns the daemon and waits until its wire port accepts, retrying
// the spawn in case a restart races the dying process's socket release.
func (d *daemonProc) start() error {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			time.Sleep(100 * time.Millisecond)
		}
		cmd := exec.Command(d.bin, d.args()...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("spawning %s: %w", d.bin, err)
		}
		exited := make(chan error, 1)
		go func() { exited <- cmd.Wait() }()
		deadline := time.Now().Add(10 * time.Second)
		for {
			select {
			case err := <-exited:
				lastErr = fmt.Errorf("daemon exited during startup: %v", err)
			default:
				if c, err := net.DialTimeout("tcp", d.listen, time.Second); err == nil {
					c.Close()
					d.cmd, d.exited = cmd, exited
					return nil
				}
				if time.Now().Before(deadline) {
					time.Sleep(20 * time.Millisecond)
					continue
				}
				cmd.Process.Kill()
				<-exited
				lastErr = fmt.Errorf("daemon never accepted on %s", d.listen)
			}
			break
		}
	}
	return lastErr
}

// kill delivers kill -9: no drain, no goodbyes, buffered journal bytes lost.
func (d *daemonProc) kill() error {
	if err := d.cmd.Process.Kill(); err != nil {
		return fmt.Errorf("killing daemon: %w", err)
	}
	<-d.exited
	return nil
}

// stop shuts the daemon down gracefully, escalating to SIGKILL on a stall.
func (d *daemonProc) stop() {
	if d.cmd == nil {
		return
	}
	d.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case <-d.exited:
	case <-time.After(15 * time.Second):
		d.cmd.Process.Kill()
		<-d.exited
	}
	d.cmd = nil
}

// killGateSource delivers the wrapped stream up to the kill offset, then
// announces its arrival and blocks until the daemon restart completes — so
// every session holds mid-stream, with at most one partial batch unsent,
// while the daemon under it is killed and recovered.
type killGateSource struct {
	inner  hwprof.Source
	at     uint64
	arrive func()
	resume <-chan struct{}
	n      uint64
}

func (k *killGateSource) Next() (hwprof.Tuple, bool) {
	if k.n == k.at {
		k.arrive()
		<-k.resume
	}
	k.n++
	return k.inner.Next()
}

func (k *killGateSource) Err() error { return k.inner.Err() }

// crash drives sessions against a daemon loadgen itself spawned, kills the
// daemon with SIGKILL once every session has streamed killAt events, and
// restarts it on the same address. Each session holds at the kill point so
// the crash lands at a deterministic stream offset, then resumes against
// the restarted daemon's recovered tombstones; every session's delivered
// profiles must be bit-identical to an uninterrupted local run of the same
// workload and seed.
func (g *generator) crash(d *daemonProc, killAt uint64, metricsURL string) error {
	fmt.Printf("loadgen: crash mode: %d session(s) × %d events, SIGKILL at event %d, journal %s (sync %s)\n",
		g.sessions, g.events, killAt, d.journalDir, d.journalSync)
	if err := d.start(); err != nil {
		return err
	}
	defer d.stop()

	ctx := context.Background()
	restarted := make(chan struct{})
	var atGate sync.WaitGroup
	atGate.Add(g.sessions)

	type crashOutcome struct {
		idx        int
		profiles   []map[hwprof.Tuple]uint64
		reconnects uint64
		err        error
	}
	results := make(chan crashOutcome, g.sessions)
	for i := 0; i < g.sessions; i++ {
		go func(idx int) {
			var once sync.Once
			arrive := func() { once.Do(atGate.Done) } // a failed session must not wedge the gate
			defer arrive()
			out := crashOutcome{idx: idx}
			defer func() { results <- out }()

			cfg := g.cfg
			cfg.Seed = g.seed + uint64(idx)
			sess, err := hwprof.Connect(ctx, g.addr,
				hwprof.WithConfig(cfg), hwprof.WithShards(g.shards), hwprof.WithBatchSize(g.batch),
				hwprof.WithBackoff(g.backoff, 0), hwprof.WithMaxAttempts(g.attempts))
			if err != nil {
				out.err = err
				return
			}
			defer sess.Close()
			src, err := hwprof.NewWorkload(g.workload, hwprof.KindValue, cfg.Seed)
			if err != nil {
				out.err = err
				return
			}
			gated := &killGateSource{
				inner: hwprof.Limit(src, g.events), at: killAt,
				arrive: arrive, resume: restarted,
			}
			_, out.err = sess.Run(gated, func(_ int, counts map[hwprof.Tuple]uint64) {
				out.profiles = append(out.profiles, counts)
			})
			out.reconnects = sess.Reconnects()
		}(i)
	}

	atGate.Wait()
	// Give the daemon a beat to drain queued batches into the journal, so
	// the restart replays real stream content, not just the Hello record.
	time.Sleep(500 * time.Millisecond)
	fmt.Printf("loadgen: crash: all sessions held at event %d, killing the daemon\n", killAt)
	if err := d.kill(); err != nil {
		close(restarted)
		return err
	}
	if err := d.start(); err != nil {
		close(restarted)
		return fmt.Errorf("restarting daemon: %w", err)
	}
	fmt.Println("loadgen: crash: daemon restarted, releasing sessions")
	close(restarted)

	outs := make([]crashOutcome, g.sessions)
	for i := 0; i < g.sessions; i++ {
		out := <-results
		outs[out.idx] = out
	}
	failed := 0
	var reconnects uint64
	for _, out := range outs {
		if out.err != nil {
			failed++
			fmt.Printf("session %d: FAILED: %v\n", out.idx, out.err)
			continue
		}
		// The reference: the same workload and seed through a local engine,
		// no daemon and no crash in the path.
		cfg := g.cfg
		cfg.Seed = g.seed + uint64(out.idx)
		refSrc, err := hwprof.NewWorkload(g.workload, hwprof.KindValue, cfg.Seed)
		if err != nil {
			return err
		}
		var ref []map[hwprof.Tuple]uint64
		if _, err := hwprof.Profile(ctx, hwprof.Limit(refSrc, g.events),
			hwprof.WithConfig(cfg), hwprof.WithShards(g.shards), hwprof.WithoutOracle(),
			hwprof.OnInterval(func(_ int, _, hw map[hwprof.Tuple]uint64) { ref = append(ref, hw) })); err != nil {
			return fmt.Errorf("local reference run: %w", err)
		}
		switch {
		case len(out.profiles) != len(ref):
			failed++
			fmt.Printf("session %d: FAILED: %d interval(s) delivered, reference has %d\n",
				out.idx, len(out.profiles), len(ref))
		case out.reconnects == 0:
			failed++
			fmt.Printf("session %d: FAILED: no reconnect observed — the kill exercised no recovery\n", out.idx)
		default:
			bad := 0
			for e := range ref {
				if !countsEqual(out.profiles[e], ref[e]) {
					bad++
				}
			}
			if bad > 0 {
				failed++
				fmt.Printf("session %d: FAILED: %d of %d interval(s) diverge from the uninterrupted run\n",
					out.idx, bad, len(ref))
				continue
			}
			reconnects += out.reconnects
			fmt.Printf("session %d: %d interval(s) bit-identical across the kill, %d reconnect(s)\n",
				out.idx, len(ref), out.reconnects)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d session(s) failed", failed, g.sessions)
	}

	if metricsURL != "" {
		vals, err := fetchMetrics(metricsURL)
		if err != nil {
			return fmt.Errorf("scraping %s: %w", metricsURL, err)
		}
		if got := vals["hwprof_journal_recovered_sessions_total"]; got != float64(g.sessions) {
			return fmt.Errorf("hwprof_journal_recovered_sessions_total = %g, want %d", got, g.sessions)
		}
		if got := vals["hwprof_journal_recover_failures_total"]; got != 0 {
			return fmt.Errorf("hwprof_journal_recover_failures_total = %g, want 0", got)
		}
		if got := vals["hwprof_journal_torn_truncations_total"]; got > 0 {
			fmt.Printf("loadgen: crash: %g torn journal tail(s) truncated on recovery\n", got)
		}
		fmt.Printf("loadgen: crash: recovery counters clean (%d recovered, 0 failures)\n", g.sessions)
	}
	fmt.Printf("loadgen: crash: PASS — %d session(s) resumed bit-identically across a daemon SIGKILL (%d reconnect(s))\n",
		g.sessions, reconnects)
	return nil
}

// fetchMetrics scrapes a Prometheus text endpoint into name → value.
func fetchMetrics(url string) (map[string]float64, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	vals := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		if v, err := strconv.ParseFloat(fields[1], 64); err == nil {
			vals[fields[0]] = v
		}
	}
	return vals, nil
}

// countsEqual compares two profiles bit-for-bit.
func countsEqual(a, b map[hwprof.Tuple]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for t, c := range a {
		if b[t] != c {
			return false
		}
	}
	return true
}

// chaosDialer wraps each session's dials with the configured fault plan:
// starting with the first connection, every k-th one is cut or corrupted
// at a deterministic byte offset, spread across sessions and attachments
// so faults land at varied stream positions. Offsets grow with each
// reattachment, so a session always makes progress between faults.
func (g *generator) chaosDialer(idx int) func(string, time.Duration) (net.Conn, error) {
	dials := 0
	return func(addr string, timeout time.Duration) (net.Conn, error) {
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, err
		}
		dials++
		switch {
		case g.hangEvery > 0 && dials%g.hangEvery == 1%g.hangEvery:
			off := g.hangBytes + int64(idx*1021+dials*4099)
			conn = &faultinject.HangupConn{Conn: conn, After: off}
		case g.flipEvery > 0 && dials%g.flipEvery == 1%g.flipEvery:
			off := g.flipBytes + int64(idx*509+dials*257)
			conn = &faultinject.FlipConn{Conn: conn, Byte: off}
		}
		return conn, nil
	}
}

// triggerDialer wraps every dial of a scenario session in a TriggerConn
// and publishes the live connection, so the stream-position watcher
// (faultArmSource) can arm faults on whatever connection is current —
// including the ones reconnection establishes after earlier faults.
func triggerDialer(cur *atomic.Pointer[faultinject.TriggerConn]) func(string, time.Duration) (net.Conn, error) {
	return func(addr string, timeout time.Duration) (net.Conn, error) {
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, err
		}
		tc := &faultinject.TriggerConn{Conn: conn}
		cur.Store(tc)
		return tc, nil
	}
}

// faultArmSource watches the session's stream position and arms the
// scenario's next fault on the live connection when its window opens. The
// fault fires once per window, on the first write after the window's
// start position reaches the source — the stream itself is never altered,
// so a scenario run's recording is independent of its fault schedule.
type faultArmSource struct {
	inner  hwprof.Source
	faults []scenario.Fault // validated: sorted-compatible, non-overlapping
	conn   *atomic.Pointer[faultinject.TriggerConn]
	next   int
	pos    uint64
}

func (s *faultArmSource) Next() (hwprof.Tuple, bool) {
	if s.next < len(s.faults) && s.pos >= s.faults[s.next].From {
		f := s.faults[s.next]
		s.next++
		if c := s.conn.Load(); c != nil {
			switch f.Kind {
			case scenario.FaultHangup:
				c.Hangup()
			case scenario.FaultCorrupt:
				c.Corrupt()
			}
		}
	}
	s.pos++
	return s.inner.Next()
}

func (s *faultArmSource) Err() error { return s.inner.Err() }

// phasePacer throttles a scenario stream to each phase's own target rate,
// checking the clock every 256 events. Unpaced phases (rate 0) run at
// full speed; the clock restarts at every phase boundary.
type phasePacer struct {
	inner  hwprof.Source
	phases []scenario.Phase
	start  time.Time

	pi  int
	pos uint64 // position within the current phase
}

func (p *phasePacer) Next() (hwprof.Tuple, bool) {
	for p.pi < len(p.phases) && p.pos >= p.phases[p.pi].Events {
		p.pi++
		p.pos = 0
		p.start = time.Now()
	}
	if p.pi < len(p.phases) {
		if rate := p.phases[p.pi].Rate; rate > 0 && p.pos%256 == 0 {
			target := p.start.Add(time.Duration(float64(p.pos) / rate * float64(time.Second)))
			if d := time.Until(target); d > 0 {
				time.Sleep(d)
			}
		}
	}
	p.pos++
	return p.inner.Next()
}

func (p *phasePacer) Err() error { return p.inner.Err() }

// pacedSource throttles the wrapped source to a target event rate, checking
// the clock every 256 events.
type pacedSource struct {
	inner hwprof.Source
	rate  float64
	start time.Time
	n     uint64
}

func (p *pacedSource) Next() (hwprof.Tuple, bool) {
	if p.n%256 == 0 {
		target := p.start.Add(time.Duration(float64(p.n) / p.rate * float64(time.Second)))
		if d := time.Until(target); d > 0 {
			time.Sleep(d)
		}
	}
	p.n++
	return p.inner.Next()
}

func (p *pacedSource) Err() error { return p.inner.Err() }

// isOverload reports whether err is the daemon's admission refusal.
func isOverload(err error) bool {
	var e wire.ErrorMsg
	return asErrorMsg(err, &e) && e.Code == wire.CodeOverload
}

func asErrorMsg(err error, e *wire.ErrorMsg) bool {
	for err != nil {
		if m, ok := err.(wire.ErrorMsg); ok {
			*e = m
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// percentile reads the q-quantile from a sorted sample.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func fmtSeconds(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(10 * time.Microsecond).String()
}

// scrapeMetrics fetches the daemon's Prometheus endpoint and echoes the
// overload-relevant series so a chaos run's server-side decisions are
// visible next to the client-side report.
func scrapeMetrics(url string) {
	resp, err := http.Get(url)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: scraping %s: %v\n", url, err)
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: reading %s: %v\n", url, err)
		return
	}
	fmt.Printf("\ndaemon overload counters (%s):\n", url)
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		for _, prefix := range []string{
			"hwprof_admission_", "hwprof_shed_", "hwprof_events_shed",
			"hwprof_resume", "hwprof_tombstones_", "hwprof_sessions_",
			"hwprof_frames_corrupt", "hwprof_journal_",
			"hwprof_elastic_", "hwprof_ladder_", "hwprof_tenant_",
		} {
			if strings.HasPrefix(line, prefix) {
				fmt.Println("  " + line)
				break
			}
		}
	}
}
