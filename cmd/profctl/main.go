// Command profctl is the profiling daemon's client: it opens a session
// with a profiled instance, streams a tuple stream to it (a trace file, a
// synthetic workload, or an instrumented VM program), and prints the
// interval profiles the daemon returns.
//
// Usage:
//
//	profctl -addr localhost:9123 -workload gcc -intervals 10
//	profctl -addr localhost:9123 -trace gcc.trace -tables 4 -shards 4
//	profctl -addr localhost:9323 -subscribe -epochs 10
//	profctl -export-journal /var/lib/profiled -session 3 -o sess3.rec
//
// On a block-policy daemon the printed profiles are bit-identical to a
// local `profile` run over the same flags and seed.
//
// With -subscribe, profctl instead attaches to an epoch publisher — the
// root aggd of a fleet tree, or a profiled -publish daemon — and prints
// its merged fleet epochs. A partial epoch (children missing after the
// straggler deadline) makes profctl exit non-zero naming them, the way
// shed events do in streaming mode.
//
// With -export-journal, profctl reads a session's write-ahead journal
// (read-only; a live or crashed daemon's directory is safe to export
// from) and writes it as a scenario recording: the exact accepted event
// stream as an embedded trace plus the digests of the profiles the daemon
// served. `scenario replay` then re-runs the engine over the stream and
// proves the served profiles bit-identical — an offline audit of a
// production session.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"hwprof"
)

func main() {
	var (
		addr = flag.String("addr", "localhost:9123", "profiled daemon address (host:port)")

		traceFile = flag.String("trace", "", "read tuples from this trace file")
		workload  = flag.String("workload", "", "generate tuples from this synthetic benchmark analog")
		program   = flag.String("program", "", "generate tuples from this VM program (looped)")
		kindName  = flag.String("kind", "value", "tuple kind for -workload/-program: value or edge")
		seed      = flag.Uint64("seed", 1, "workload seed")

		interval  = flag.Uint64("interval", 10_000, "profile interval length in events")
		threshold = flag.Float64("threshold", 1, "candidate threshold in percent of interval length")
		entries   = flag.Int("entries", 2048, "total hash-table counters")
		tables    = flag.Int("tables", 4, "number of hash tables")
		conserv   = flag.Bool("conservative", true, "use conservative update (C1)")
		reset     = flag.Bool("reset", false, "reset counters on promotion (R1)")
		retain    = flag.Bool("retain", true, "retain candidates across intervals (P1)")

		intervals = flag.Int("intervals", 5, "number of profile intervals to stream")
		top       = flag.Int("top", 10, "candidates to print per interval")

		shards = flag.Int("shards", 1, "shards the daemon should run for this session")
		batch  = flag.Int("batch", 0, "tuples per batch frame (default 512)")

		subscribe  = flag.Bool("subscribe", false, "subscribe to -addr as an epoch publisher (aggd or profiled -publish) instead of streaming events to it")
		epochs     = flag.Int("epochs", 0, "epochs to print under -subscribe (0: -intervals)")
		startEpoch = flag.Uint64("start-epoch", 0, "first epoch wanted under -subscribe")

		exportJournal = flag.String("export-journal", "", "export a session from this profiled journal directory as a scenario recording instead of streaming")
		exportSession = flag.Uint64("session", 0, "session id to export under -export-journal (0: the directory's only session)")
		exportOut     = flag.String("o", "", "output recording file for -export-journal (default session-<id>.rec)")
	)
	flag.Parse()
	if *exportJournal != "" {
		if err := runExport(*exportJournal, *exportSession, *exportOut); err != nil {
			fmt.Fprintln(os.Stderr, "profctl:", err)
			os.Exit(1)
		}
		return
	}
	if *subscribe {
		n := *epochs
		if n == 0 {
			n = *intervals
		}
		if err := runSubscribe(*addr, *interval, *startEpoch, n, *top); err != nil {
			fmt.Fprintln(os.Stderr, "profctl:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*addr, *traceFile, *workload, *program, *kindName, *seed,
		*interval, *threshold, *entries, *tables, *conserv, *reset, *retain,
		*intervals, *top, *shards, *batch); err != nil {
		fmt.Fprintln(os.Stderr, "profctl:", err)
		os.Exit(1)
	}
}

// runSubscribe attaches to an epoch publisher — the root of an aggregation
// tree, usually — and prints its merged fleet epochs. Partial epochs are
// worth a non-zero exit, mirroring the lossy-shed exit of the streaming
// mode: the missing children are printed, and scripts must not treat the
// fleet profile as complete.
func runSubscribe(addr string, epochLength, start uint64, n, top int) error {
	sub, err := hwprof.Subscribe(context.Background(), addr,
		hwprof.WithIntervalLength(epochLength), hwprof.WithStartEpoch(start))
	if err != nil {
		return err
	}
	defer sub.Close()

	missing := make(map[string]struct{})
	partials := 0
	seen := 0
	for ep := range sub.C {
		fmt.Printf("\nepoch %d from %q (%d children):\n", ep.Epoch, ep.Source, ep.Children)
		printTop(ep.Counts, 0, top)
		if ep.Partial {
			partials++
			fmt.Printf("  PARTIAL: missing %v\n", ep.Missing)
			for _, name := range ep.Missing {
				missing[name] = struct{}{}
			}
		}
		if seen++; seen >= n {
			break
		}
	}
	sub.Close()
	if err := sub.Err(); err != nil && seen < n {
		return err
	}
	if gaps := sub.Gaps(); gaps > 0 {
		fmt.Fprintf(os.Stderr, "profctl: %d epoch(s) lost beyond the publisher's retention\n", gaps)
	}
	if partials > 0 {
		names := make([]string, 0, len(missing))
		for name := range missing {
			names = append(names, name)
		}
		sort.Strings(names)
		return fmt.Errorf("%d of %d epoch(s) partial; missing children: %v", partials, seen, names)
	}
	return nil
}

func run(addr, traceFile, workload, program, kindName string, seed, interval uint64,
	threshold float64, entries, tables int, conserv, reset, retain bool,
	intervals, top, shards, batch int) error {

	var kind hwprof.Kind
	switch kindName {
	case "value":
		kind = hwprof.KindValue
	case "edge":
		kind = hwprof.KindEdge
	default:
		return fmt.Errorf("unknown kind %q", kindName)
	}

	var src hwprof.Source
	switch {
	case traceFile != "":
		f, err := os.Open(traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		r, err := hwprof.OpenTrace(f)
		if err != nil {
			return err
		}
		src = r
	case workload != "":
		g, err := hwprof.NewWorkload(workload, kind, seed)
		if err != nil {
			return err
		}
		src = g
	case program != "":
		p, err := hwprof.NewProgramSource(program, kind, true)
		if err != nil {
			return err
		}
		src = p
	default:
		return fmt.Errorf("one of -trace, -workload or -program is required")
	}

	cfg := hwprof.Config{
		IntervalLength:     interval,
		ThresholdPercent:   threshold,
		TotalEntries:       entries,
		NumTables:          tables,
		CounterWidth:       24,
		ConservativeUpdate: conserv,
		ResetOnPromote:     reset,
		Retain:             retain,
		Seed:               seed + 7,
	}
	sess, err := hwprof.Dial(addr, cfg, hwprof.RunConfig{Shards: shards, BatchSize: batch})
	if err != nil {
		// Surface the daemon's admission decision verbatim — "admission
		// refused: ..." names the cost or limit that was exceeded.
		return err
	}
	fmt.Printf("session %d at %s: %v, policy %s\n",
		sess.ID(), addr, cfg, map[bool]string{false: "block", true: "shed"}[sess.Shedding()])

	thresh := cfg.ThresholdCount()
	n, err := sess.Run(hwprof.Limit(src, interval*uint64(intervals)),
		func(i int, counts map[hwprof.Tuple]uint64) {
			fmt.Printf("\ninterval %d:\n", i)
			printTop(counts, thresh, top)
		})
	if err != nil {
		return err
	}
	if n < intervals {
		fmt.Printf("\nstream ended after %d of %d intervals\n", n, intervals)
	}
	if r := sess.Reconnects(); r > 0 {
		fmt.Fprintf(os.Stderr, "profctl: connection dropped %d time(s); session resumed, profiles are complete\n", r)
	}
	if shed := sess.ShedEvents(); shed > 0 {
		// Lossy profiles are worth a non-zero exit: scripts comparing
		// against a local run must not treat them as exact.
		return fmt.Errorf("session shed %d events under daemon overload; profiles are lossy", shed)
	}
	return nil
}

// printTop lists the interval's hottest captured candidates.
func printTop(counts map[hwprof.Tuple]uint64, thresh uint64, top int) {
	type entry struct {
		t hwprof.Tuple
		c uint64
	}
	var cands []entry
	for t, c := range counts {
		if c >= thresh {
			cands = append(cands, entry{t, c})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].c != cands[j].c {
			return cands[i].c > cands[j].c
		}
		if cands[i].t.A != cands[j].t.A {
			return cands[i].t.A < cands[j].t.A
		}
		return cands[i].t.B < cands[j].t.B
	})
	if len(cands) > top {
		cands = cands[:top]
	}
	for _, e := range cands {
		fmt.Printf("  <%#x, %#x>  ×%d\n", e.t.A, e.t.B, e.c)
	}
}
