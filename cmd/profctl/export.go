// Journal export: turn one session's write-ahead journal into a scenario
// recording. The recording embeds the exact event stream the daemon
// accepted (as a trace-v2 stream) and the digests of the profiles it
// served, so `scenario replay` re-runs the engine over the stream and
// proves the served profiles bit-identical — an offline audit of a
// production session, with no daemon involved.
package main

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"os"

	"hwprof/internal/event"
	"hwprof/internal/journal"
	"hwprof/internal/scenario"
	"hwprof/internal/trace"
	"hwprof/internal/wire"
)

// exporter is the journal.Handler that accumulates a session's stream and
// profile digests. Export is strict: anything that would make the replay
// not bit-identical to the recording — a checkpoint start, a marked
// session, an elastic resize, a non-scenario-shaped config — is refused
// with the reason, never papered over.
type exporter struct {
	meta journal.Meta
	tw   *trace.Writer
	buf  *bytes.Buffer

	events  uint64
	digests []uint32
	enc     []byte
}

func (x *exporter) Start(meta journal.Meta, state journal.State) error {
	if state.Interval != 0 || state.Observed != 0 || state.Shed != 0 {
		return fmt.Errorf("journal begins at a checkpoint (interval %d, %d events observed): export needs the full batch history",
			state.Interval, state.Observed)
	}
	if meta.Hello.Marked {
		return fmt.Errorf("session %d is marked (client-placed boundaries): a scenario replay clips by interval length and cannot reproduce it", meta.SessionID)
	}
	x.meta = meta
	x.buf = &bytes.Buffer{}
	tw, err := trace.NewWriter(x.buf, event.KindValue)
	if err != nil {
		return err
	}
	x.tw = tw
	return nil
}

func (x *exporter) Batch(events []event.Tuple) error {
	for _, tp := range events {
		if err := x.tw.Write(tp); err != nil {
			return err
		}
	}
	x.events += uint64(len(events))
	return nil
}

func (x *exporter) Boundary(index, shed uint64, profile []byte) error {
	msg, err := wire.DecodeProfile(profile)
	if err != nil {
		return fmt.Errorf("boundary %d frame: %w", index, err)
	}
	if msg.Index != uint64(len(x.digests)) {
		return fmt.Errorf("boundary frame index %d, expected %d", msg.Index, len(x.digests))
	}
	// Re-encode without the serving-side shed counter: the scenario digest
	// is the CRC32 of the canonical <index, counts> encoding, and shed
	// events never reached the engine or the journal, so the replayed
	// profile matches it exactly.
	x.enc = wire.AppendProfile(x.enc[:0], wire.ProfileMsg{Index: msg.Index, Counts: msg.Counts})
	x.digests = append(x.digests, crc32.ChecksumIEEE(x.enc))
	return nil
}

func (x *exporter) Resize(h wire.Hello) error {
	return fmt.Errorf("journal contains an elastic resize (to %v, %d shard(s)) at interval %d: a scenario runs one fixed geometry",
		h.Config, h.Shards, len(x.digests))
}

// runExport replays one session's journal read-only and writes it as a
// scenario recording verifiable by `scenario replay`.
func runExport(dir string, id uint64, out string) error {
	if id == 0 {
		ids, err := journal.ScanDir(dir)
		if err != nil {
			return err
		}
		switch len(ids) {
		case 0:
			return fmt.Errorf("no session journals under %s", dir)
		case 1:
			id = ids[0]
		default:
			return fmt.Errorf("%d session journals under %s (%v): pick one with -session", len(ids), dir, ids)
		}
	}
	if out == "" {
		out = fmt.Sprintf("session-%d.rec", id)
	}
	x := &exporter{}
	st, stats, err := journal.Replay(journal.Options{Dir: dir}, id, x)
	if err != nil {
		return fmt.Errorf("session %d: %w", id, err)
	}
	if stats.TornSegments > 0 {
		fmt.Fprintf(os.Stderr, "profctl: session %d journal has a torn tail (%d bytes); exporting the intact prefix\n", id, stats.TornBytes)
	}
	if len(x.digests) == 0 {
		return fmt.Errorf("session %d journal holds %d event(s), shorter than one %d-event interval: nothing to verify",
			id, st.Observed, x.meta.Hello.Config.IntervalLength)
	}
	if err := x.tw.Close(); err != nil {
		return fmt.Errorf("finishing trace: %w", err)
	}

	cfg := x.meta.Hello.Config
	text := fmt.Sprintf(`# Exported from a profiled session journal by profctl -export-journal.
# The event stream rides in the recording's embedded trace; the phase
# source line below is never consulted on replay.
scenario export-session-%d
seed %d
kind value
interval %d
threshold %g
tables %d
entries %d
shards %d

phase journal %d {
	source workload gcc
}
`, id, cfg.Seed, cfg.IntervalLength, cfg.ThresholdPercent,
		cfg.NumTables, cfg.TotalEntries, x.meta.Hello.Shards, x.events)
	sc, err := scenario.Parse(text)
	if err != nil {
		return fmt.Errorf("session %d config does not form a valid scenario: %w", id, err)
	}
	// The scenario's engine must be the journal's engine, bit for bit —
	// the scenario DSL pins the C1/R0/P1 24-bit shape, so a session that
	// ran anything else is not expressible and must be refused, not
	// approximated.
	if want := sc.Config(); want != cfg {
		return fmt.Errorf("session %d config %v is not scenario-shaped (need %v): profiles would not replay bit-identically", id, cfg, want)
	}

	rec := &scenario.Recording{Text: text, Scenario: sc, Trace: x.buf.Bytes(), Digests: x.digests}
	data := rec.Encode()
	if _, err := scenario.DecodeRecording(data); err != nil {
		return fmt.Errorf("session %d: encoded recording does not round-trip: %w", id, err)
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("exported session %d: %d events, %d interval(s), %d byte(s) → %s\n",
		id, x.events, len(x.digests), len(data), out)
	fmt.Printf("verify with: scenario replay %s\n", out)
	return nil
}
