// Command vmrun assembles and executes a VM program (built-in or from an
// assembly file), optionally dumping its profiling-event stream.
//
// Usage:
//
//	vmrun -program fib
//	vmrun -asm prog.s -mem 1024 -dump-events edge | head
package main

import (
	"flag"
	"fmt"
	"os"

	"hwprof/internal/event"
	"hwprof/internal/vm"
	"hwprof/internal/vm/progs"
)

func main() {
	var (
		program  = flag.String("program", "", "built-in program name (see -list)")
		asmFile  = flag.String("asm", "", "assemble and run this file instead")
		memWords = flag.Int("mem", 4096, "data memory size in words for -asm")
		maxSteps = flag.Uint64("max-steps", 100_000_000, "instruction budget (0 = unlimited)")
		dump     = flag.String("dump-events", "", "dump events of this kind (value or edge) to stdout")
		list     = flag.Bool("list", false, "list built-in programs and exit")
	)
	flag.Parse()
	if *list {
		for _, p := range progs.All() {
			fmt.Printf("%-10s %s\n", p.Name, p.Description)
		}
		return
	}
	if err := run(*program, *asmFile, *memWords, *maxSteps, *dump); err != nil {
		fmt.Fprintln(os.Stderr, "vmrun:", err)
		os.Exit(1)
	}
}

func run(program, asmFile string, memWords int, maxSteps uint64, dump string) error {
	var m *vm.Machine
	switch {
	case program != "" && asmFile != "":
		return fmt.Errorf("specify only one of -program and -asm")
	case program != "":
		p, err := progs.ByName(program)
		if err != nil {
			return err
		}
		m, err = p.NewMachine()
		if err != nil {
			return err
		}
	case asmFile != "":
		src, err := os.ReadFile(asmFile)
		if err != nil {
			return err
		}
		m, err = vm.AssembleMachine(string(src), memWords)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("one of -program or -asm is required")
	}

	events := 0
	switch dump {
	case "":
	case "value":
		m.OnValue = func(tp event.Tuple) {
			events++
			fmt.Printf("value %#x %#x\n", tp.A, tp.B)
		}
	case "edge":
		m.OnEdge = func(tp event.Tuple) {
			events++
			fmt.Printf("edge %#x %#x\n", tp.A, tp.B)
		}
	default:
		return fmt.Errorf("unknown event kind %q", dump)
	}

	steps, err := m.Run(maxSteps)
	if err != nil {
		return fmt.Errorf("after %d steps: %w", steps, err)
	}
	fmt.Fprintf(os.Stderr, "vmrun: %d instructions, halted=%v", steps, m.Halted())
	if dump != "" {
		fmt.Fprintf(os.Stderr, ", %d %s events", events, dump)
	}
	fmt.Fprintln(os.Stderr)
	return nil
}
