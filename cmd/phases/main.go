// Command phases runs SimPoint-style basic-block-vector phase analysis
// (the paper's methodology refs [16, 17]) over a VM program: execution is
// cut into block-count intervals, summarized as basic-block vectors,
// clustered into phases, and one weighted simulation point is reported per
// phase.
//
// Usage:
//
//	phases -program treeins -k 2
//	phases -program quicksort -interval 500 -k 3
package main

import (
	"flag"
	"fmt"
	"os"

	"hwprof/internal/bbv"
	"hwprof/internal/vm/progs"
)

func main() {
	var (
		program  = flag.String("program", "", "VM program to analyze (see vmrun -list)")
		interval = flag.Uint64("interval", 500, "interval length in block executions")
		k        = flag.Int("k", 2, "number of phases to find")
		dims     = flag.Int("dims", 16, "random-projection dimensions")
		seed     = flag.Uint64("seed", 1, "clustering seed")
		maxSteps = flag.Uint64("max-steps", 100_000_000, "instruction budget")
	)
	flag.Parse()
	if err := run(*program, *interval, *k, *dims, *seed, *maxSteps); err != nil {
		fmt.Fprintln(os.Stderr, "phases:", err)
		os.Exit(1)
	}
}

func run(program string, interval uint64, k, dims int, seed, maxSteps uint64) error {
	if program == "" {
		return fmt.Errorf("-program is required")
	}
	p, err := progs.ByName(program)
	if err != nil {
		return err
	}
	m, err := p.NewMachine()
	if err != nil {
		return err
	}
	c, err := bbv.NewCollector(m, interval)
	if err != nil {
		return err
	}
	steps, err := m.Run(maxSteps)
	if err != nil {
		return err
	}
	vectors := c.Vectors()
	if len(vectors) == 0 {
		return fmt.Errorf("program produced no intervals (ran %d instructions)", steps)
	}
	if k > len(vectors) {
		k = len(vectors)
	}
	res, err := bbv.Analyze(vectors, k, dims, seed)
	if err != nil {
		return err
	}

	fmt.Printf("%s: %d instructions, %d intervals of %d blocks, %d phases\n\n",
		program, steps, len(vectors), interval, k)
	fmt.Print("phase timeline: ")
	for _, l := range res.Labels {
		fmt.Printf("%d", l)
	}
	fmt.Println()
	for ci := range res.Points {
		fmt.Printf("phase %d: weight %.2f, simulation point = interval %d (%d distinct blocks)\n",
			ci, res.Weights[ci], res.Points[ci], len(vectors[res.Points[ci]]))
	}
	return nil
}
