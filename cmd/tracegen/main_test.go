package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hwprof"
)

// errOf runs tracegen's core with output to a throwaway file and returns
// the error.
func errOf(t *testing.T, workload, program, scnPath, kind string, n uint64) error {
	t.Helper()
	out := filepath.Join(t.TempDir(), "out.trace")
	return run(workload, program, scnPath, kind, n, 1, out)
}

func TestRejectsUnknownWorkloadListingValid(t *testing.T) {
	err := errOf(t, "notabench", "", "", "value", 100)
	if err == nil {
		t.Fatal("unknown workload accepted")
	}
	for _, name := range hwprof.Workloads() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list valid workload %q", err, name)
		}
	}
}

func TestRejectsUnknownProgramListingValid(t *testing.T) {
	err := errOf(t, "", "notaprog", "", "value", 100)
	if err == nil {
		t.Fatal("unknown program accepted")
	}
	for _, name := range hwprof.Programs() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list valid program %q", err, name)
		}
	}
}

func TestRejectsUnknownKind(t *testing.T) {
	err := errOf(t, "gcc", "", "", "paths", 100)
	if err == nil {
		t.Fatal("unknown kind accepted")
	}
	if !strings.Contains(err.Error(), "value or edge") {
		t.Fatalf("error %q does not name the valid kinds", err)
	}
}

func TestRejectsMissingAndConflictingSources(t *testing.T) {
	if err := errOf(t, "", "", "", "value", 100); err == nil {
		t.Fatal("no source accepted")
	}
	if err := errOf(t, "gcc", "fib", "", "value", 100); err == nil {
		t.Fatal("conflicting -workload and -program accepted")
	}
}

func TestRejectsUnknownScenarioDomain(t *testing.T) {
	scn := filepath.Join(t.TempDir(), "bad.scn")
	text := "scenario bad\nseed 1\nphase a 20000 {\nsource quantum gcc\n}\n"
	if err := os.WriteFile(scn, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	err := errOf(t, "", "", scn, "value", 0)
	if err == nil {
		t.Fatal("unknown scenario domain accepted")
	}
	if !strings.Contains(err.Error(), "workload") || !strings.Contains(err.Error(), "zipf") {
		t.Fatalf("error %q does not list the valid domains", err)
	}
}

func TestScenarioTraceMatchesScenarioLength(t *testing.T) {
	dir := t.TempDir()
	scn := filepath.Join(dir, "ok.scn")
	text := "scenario ok\nseed 9\ninterval 1000\nphase a 3000 {\nsource workload li\n}\n"
	if err := os.WriteFile(scn, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "ok.trace")
	if err := run("", "", scn, "value", 0, 1, out); err != nil {
		t.Fatalf("scenario trace: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := hwprof.OpenTrace(f)
	if err != nil {
		t.Fatalf("OpenTrace: %v", err)
	}
	n := 0
	for {
		if _, ok := r.Next(); !ok {
			break
		}
		n++
	}
	if r.Err() != nil {
		t.Fatalf("trace read: %v", r.Err())
	}
	if n != 3000 {
		t.Fatalf("trace holds %d events, scenario declares 3000", n)
	}
}
