// Command tracegen writes a binary tuple trace from a synthetic benchmark
// analog or an instrumented VM program.
//
// Usage:
//
//	tracegen -workload gcc -kind value -n 1000000 -o gcc.trace
//	tracegen -program interp -kind edge -n 200000 -o interp.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"hwprof"
)

func main() {
	var (
		workload = flag.String("workload", "", "synthetic benchmark analog (one of: burg deltablue gcc go li m88ksim sis vortex)")
		program  = flag.String("program", "", "VM program (one of: fib interp matmul sort strhash treeins)")
		kindName = flag.String("kind", "value", "tuple kind: value or edge")
		n        = flag.Uint64("n", 1_000_000, "number of events to write")
		seed     = flag.Uint64("seed", 1, "workload seed")
		out      = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()
	if err := run(*workload, *program, *kindName, *n, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(workload, program, kindName string, n, seed uint64, out string) error {
	var kind hwprof.Kind
	switch kindName {
	case "value":
		kind = hwprof.KindValue
	case "edge":
		kind = hwprof.KindEdge
	default:
		return fmt.Errorf("unknown kind %q (want value or edge)", kindName)
	}

	var src hwprof.Source
	var err error
	switch {
	case workload != "" && program != "":
		return fmt.Errorf("specify only one of -workload and -program")
	case workload != "":
		src, err = hwprof.NewWorkload(workload, kind, seed)
	case program != "":
		src, err = hwprof.NewProgramSource(program, kind, true)
	default:
		return fmt.Errorf("one of -workload or -program is required")
	}
	if err != nil {
		return err
	}

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	written, err := hwprof.WriteTrace(w, kind, src, n)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tracegen: wrote %d events\n", written)
	return nil
}
