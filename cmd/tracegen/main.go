// Command tracegen writes a binary tuple trace from a synthetic benchmark
// analog, an instrumented VM program, or a full declarative scenario.
//
// Usage:
//
//	tracegen -workload gcc -kind value -n 1000000 -o gcc.trace
//	tracegen -program interp -kind edge -n 200000 -o interp.trace
//	tracegen -scenario pack.scn -o pack.trace
//
// Unknown workload, program, kind or scenario-domain names exit non-zero
// with the list of valid names.
package main

import (
	"flag"
	"fmt"
	"os"

	"hwprof"
	"hwprof/internal/scenario"
)

func main() {
	var (
		workload = flag.String("workload", "", "synthetic benchmark analog (one of: burg deltablue gcc go li m88ksim sis vortex)")
		program  = flag.String("program", "", "VM program (one of: fib interp matmul sort strhash treeins)")
		scnPath  = flag.String("scenario", "", "scenario file: write its full event stream (kind, length and seed come from the file; -kind/-n/-seed are rejected alongside it)")
		kindName = flag.String("kind", "value", "tuple kind: value or edge")
		n        = flag.Uint64("n", 1_000_000, "number of events to write; 0 means no limit (write until the source ends — only -program supports this)")
		seed     = flag.Uint64("seed", 1, "workload seed")
		out      = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()
	if err := run(*workload, *program, *scnPath, *kindName, *n, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(workload, program, scnPath, kindName string, n, seed uint64, out string) error {
	var kind hwprof.Kind
	switch kindName {
	case "value":
		kind = hwprof.KindValue
	case "edge":
		kind = hwprof.KindEdge
	default:
		return fmt.Errorf("unknown kind %q (want value or edge)", kindName)
	}

	// WriteTrace treats n == 0 as "no limit": acceptable only for sources
	// that actually end. A non-looped program run halts; the synthetic
	// workload generators never do, so an unlimited workload trace would
	// hang forever — reject it up front.
	var src hwprof.Source
	var err error
	switch {
	case scnPath != "" && (workload != "" || program != ""):
		return fmt.Errorf("specify only one of -scenario, -workload and -program")
	case scnPath != "":
		// A scenario file is self-contained: its own kind, seed and total
		// length govern the trace.
		text, rerr := os.ReadFile(scnPath)
		if rerr != nil {
			return rerr
		}
		sc, perr := scenario.Parse(string(text))
		if perr != nil {
			return perr
		}
		src, err = sc.Source()
		kind, n = sc.Kind, sc.TotalEvents()
	case workload != "" && program != "":
		return fmt.Errorf("specify only one of -workload and -program")
	case workload != "":
		if n == 0 {
			return fmt.Errorf("-n 0 (no limit) needs a bounded source, and workload %q is unbounded; give -n a positive count", workload)
		}
		src, err = hwprof.NewWorkload(workload, kind, seed)
	case program != "":
		// With a limit the program loops to fill the quota; without one it
		// runs exactly once so the stream is bounded.
		src, err = hwprof.NewProgramSource(program, kind, n != 0)
	default:
		return fmt.Errorf("one of -workload, -program or -scenario is required")
	}
	if err != nil {
		return err
	}

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	written, err := hwprof.WriteTrace(w, kind, src, n)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tracegen: wrote %d events\n", written)
	return nil
}
