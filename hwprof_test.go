package hwprof_test

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"

	"hwprof"
)

func TestQuickstartFlow(t *testing.T) {
	cfg := hwprof.BestMultiHash(hwprof.ShortIntervalConfig())
	p, err := hwprof.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := hwprof.NewWorkload("li", hwprof.KindValue, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < cfg.IntervalLength; i++ {
		tp, ok := w.Next()
		if !ok {
			t.Fatal("workload ended")
		}
		p.Observe(tp)
	}
	profile := p.EndInterval()
	cands := 0
	for _, n := range profile {
		if n >= cfg.ThresholdCount() {
			cands++
		}
	}
	if cands == 0 {
		t.Fatal("no candidates caught on li")
	}
	if cands > cfg.EffectiveAccumCapacity() {
		t.Fatalf("%d candidates exceed accumulator bound %d", cands, cfg.EffectiveAccumCapacity())
	}
}

func TestRunAndEvalRoundTrip(t *testing.T) {
	cfg := hwprof.BestMultiHash(hwprof.ShortIntervalConfig())
	p, err := hwprof.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := hwprof.NewWorkload("m88ksim", hwprof.KindValue, 2)
	calls := 0
	n, err := hwprof.Run(hwprof.Limit(w, 3*cfg.IntervalLength), p, cfg.IntervalLength,
		func(i int, perfect, hardware map[hwprof.Tuple]uint64) {
			calls++
			iv := hwprof.EvalInterval(perfect, hardware, cfg.ThresholdCount())
			if iv.Total < 0 {
				t.Fatalf("negative error %v", iv.Total)
			}
		})
	if err != nil || n != 3 || calls != 3 {
		t.Fatalf("Run = %d, %v; calls = %d", n, err, calls)
	}
}

func TestWorkloadsAndPrograms(t *testing.T) {
	if len(hwprof.Workloads()) != 8 {
		t.Fatalf("Workloads() = %v", hwprof.Workloads())
	}
	if len(hwprof.Programs()) < 6 {
		t.Fatalf("Programs() = %v", hwprof.Programs())
	}
	if _, err := hwprof.NewWorkload("nope", hwprof.KindValue, 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := hwprof.NewProgramSource("nope", hwprof.KindValue, false); err == nil {
		t.Fatal("unknown program accepted")
	}
}

func TestProgramSourceDelivers(t *testing.T) {
	src, err := hwprof.NewProgramSource("fib", hwprof.KindEdge, false)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, ok := src.Next(); !ok {
			break
		}
		n++
	}
	if n < 100 {
		t.Fatalf("fib produced only %d edge events", n)
	}
}

func TestTraceRoundTripViaFacade(t *testing.T) {
	w, _ := hwprof.NewWorkload("li", hwprof.KindValue, 3)
	var buf bytes.Buffer
	written, err := hwprof.WriteTrace(&buf, hwprof.KindValue, w, 5000)
	if err != nil || written != 5000 {
		t.Fatalf("WriteTrace = %d, %v", written, err)
	}
	r, err := hwprof.OpenTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind() != hwprof.KindValue {
		t.Fatalf("trace kind = %v", r.Kind())
	}
	n := 0
	for {
		if _, ok := r.Next(); !ok {
			break
		}
		n++
	}
	if n != 5000 || r.Err() != nil {
		t.Fatalf("read %d tuples, err %v", n, r.Err())
	}
}

func TestWriteTraceZeroMeansNoLimit(t *testing.T) {
	// max == 0 writes until the source is exhausted — here, all 1234
	// tuples of a bounded slice.
	w, _ := hwprof.NewWorkload("li", hwprof.KindValue, 3)
	tuples := make([]hwprof.Tuple, 1234)
	for i := range tuples {
		tuples[i], _ = w.Next()
	}
	var buf bytes.Buffer
	written, err := hwprof.WriteTrace(&buf, hwprof.KindValue, hwprof.NewSliceSource(tuples), 0)
	if err != nil || written != 1234 {
		t.Fatalf("WriteTrace(max=0) = %d, %v; want all 1234", written, err)
	}
	r, err := hwprof.OpenTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, ok := r.Next(); !ok {
			break
		}
		n++
	}
	if n != 1234 {
		t.Fatalf("read back %d tuples", n)
	}
}

// TestRunWithMatchesRun: the options-form batched driver and the legacy
// positional driver produce identical interval profiles.
func TestRunWithMatchesRun(t *testing.T) {
	cfg := hwprof.BestMultiHash(hwprof.ShortIntervalConfig())
	w, _ := hwprof.NewWorkload("gcc", hwprof.KindValue, 5)
	tuples := make([]hwprof.Tuple, 3*cfg.IntervalLength)
	for i := range tuples {
		tuples[i], _ = w.Next()
	}

	collect := func(run func(p *hwprof.Profiler, fn hwprof.IntervalFunc) (int, error)) []map[hwprof.Tuple]uint64 {
		t.Helper()
		p, err := hwprof.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var out []map[hwprof.Tuple]uint64
		n, err := run(p, func(_ int, _, h map[hwprof.Tuple]uint64) { out = append(out, h) })
		if err != nil || n != 3 {
			t.Fatalf("run = %d, %v", n, err)
		}
		return out
	}

	legacy := collect(func(p *hwprof.Profiler, fn hwprof.IntervalFunc) (int, error) {
		return hwprof.Run(hwprof.NewSliceSource(tuples), p, cfg.IntervalLength, fn)
	})
	batched := collect(func(p *hwprof.Profiler, fn hwprof.IntervalFunc) (int, error) {
		return hwprof.RunWith(hwprof.NewSliceSource(tuples), p,
			hwprof.RunConfig{IntervalLength: cfg.IntervalLength, BatchSize: 77}, fn)
	})
	if !reflect.DeepEqual(legacy, batched) {
		t.Fatal("RunWith diverges from legacy Run")
	}
}

// TestShardedFacade drives the sharded engine end-to-end through the
// facade: NewSharded + RunWith, and the one-call RunParallel, must agree.
func TestShardedFacade(t *testing.T) {
	cfg := hwprof.BestMultiHash(hwprof.ShortIntervalConfig())
	cfg.Seed = 6
	w, _ := hwprof.NewWorkload("m88ksim", hwprof.KindValue, 4)
	tuples := make([]hwprof.Tuple, 2*cfg.IntervalLength)
	for i := range tuples {
		tuples[i], _ = w.Next()
	}
	rc := hwprof.RunConfig{IntervalLength: cfg.IntervalLength, Shards: 4, NoPerfect: true}

	sp, err := hwprof.NewSharded(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	var manual []map[hwprof.Tuple]uint64
	n, err := hwprof.RunWith(hwprof.NewSliceSource(tuples), sp, rc,
		func(_ int, _, h map[hwprof.Tuple]uint64) { manual = append(manual, h) })
	sp.Close()
	if err != nil || n != 2 {
		t.Fatalf("RunWith over sharded engine = %d, %v", n, err)
	}

	var oneCall []map[hwprof.Tuple]uint64
	n, err = hwprof.RunParallel(hwprof.NewSliceSource(tuples), cfg, rc,
		func(_ int, _, h map[hwprof.Tuple]uint64) { oneCall = append(oneCall, h) })
	if err != nil || n != 2 {
		t.Fatalf("RunParallel = %d, %v", n, err)
	}
	if !reflect.DeepEqual(manual, oneCall) {
		t.Fatal("RunParallel diverges from NewSharded + RunWith")
	}
	for i, h := range oneCall {
		if len(h) == 0 {
			t.Fatalf("interval %d: empty sharded profile on a hot workload", i)
		}
	}
}

func TestStorageBytesEnvelope(t *testing.T) {
	// The paper's abstract: "between 7 to 16 Kilobytes".
	short, err := hwprof.StorageBytes(hwprof.BestMultiHash(hwprof.ShortIntervalConfig()))
	if err != nil {
		t.Fatal(err)
	}
	long, err := hwprof.StorageBytes(hwprof.BestMultiHash(hwprof.LongIntervalConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if short < 7000 || long > 17*1024 {
		t.Fatalf("storage envelope: short %d, long %d", short, long)
	}
	if _, err := hwprof.StorageBytes(hwprof.Config{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestPresetConfigsValid(t *testing.T) {
	for _, cfg := range []hwprof.Config{
		hwprof.ShortIntervalConfig(),
		hwprof.LongIntervalConfig(),
		hwprof.BestSingleHash(hwprof.ShortIntervalConfig()),
		hwprof.BestMultiHash(hwprof.LongIntervalConfig()),
	} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("preset %v invalid: %v", cfg, err)
		}
	}
	bsh := hwprof.BestSingleHash(hwprof.ShortIntervalConfig())
	if bsh.NumTables != 1 || !bsh.ResetOnPromote || !bsh.Retain {
		t.Fatalf("BestSingleHash = %+v", bsh)
	}
	mh := hwprof.BestMultiHash(hwprof.ShortIntervalConfig())
	if mh.NumTables != 4 || !mh.ConservativeUpdate || mh.ResetOnPromote || !mh.Retain {
		t.Fatalf("BestMultiHash = %+v", mh)
	}
}

func TestAdaptiveFacade(t *testing.T) {
	base := hwprof.BestMultiHash(hwprof.ShortIntervalConfig())
	base.Seed = 4
	a, err := hwprof.NewAdaptive(hwprof.AdaptiveConfig{
		Base:        base,
		MinLength:   1_000,
		MaxLength:   100_000,
		ShrinkAbove: 60,
		GrowBelow:   10,
		Settle:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	w, _ := hwprof.NewWorkload("li", hwprof.KindValue, 1)
	boundaries := 0
	for i := 0; i < 50_000; i++ {
		tp, _ := w.Next()
		b, err := a.Observe(tp)
		if err != nil {
			t.Fatal(err)
		}
		if b != nil {
			boundaries++
			if len(b.Profile) == 0 {
				t.Fatal("boundary with empty profile on a hot workload")
			}
		}
	}
	if boundaries == 0 {
		t.Fatal("no boundaries observed")
	}
}

func TestCombineFacade(t *testing.T) {
	if hwprof.Combine(1, 2) != (hwprof.Tuple{A: 1, B: 2}) {
		t.Fatal("two-variable Combine not literal")
	}
	if hwprof.Combine(1, 2, 3) == hwprof.Combine(1, 3, 2) {
		t.Fatal("multi-variable Combine insensitive to order")
	}
}

func TestInterleaveFacade(t *testing.T) {
	a, _ := hwprof.NewWorkload("li", hwprof.KindValue, 1)
	b, _ := hwprof.NewWorkload("m88ksim", hwprof.KindValue, 2)
	merged, err := hwprof.Interleave(100, a, b)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for n < 1000 {
		if _, ok := merged.Next(); !ok {
			t.Fatal("merged stream ended")
		}
		n++
	}
	if _, err := hwprof.Interleave(0, a); err == nil {
		t.Fatal("zero quantum accepted")
	}
}

// countingNexter is a minimal error-free producer: Next only, no Err.
type countingNexter struct{ n uint64 }

func (c *countingNexter) Next() (hwprof.Tuple, bool) {
	c.n++
	return hwprof.Tuple{A: c.n % 64, B: 1}, true
}

// TestFromNexterFacade: an Err-less producer lifts into a Source with a
// permanently nil Err; a real Source passes through unchanged.
func TestFromNexterFacade(t *testing.T) {
	src := hwprof.FromNexter(&countingNexter{})
	if _, ok := src.Next(); !ok || src.Err() != nil {
		t.Fatalf("adapted nexter: ok=%v err=%v", ok, src.Err())
	}
	w, _ := hwprof.NewWorkload("li", hwprof.KindValue, 1)
	if hwprof.FromNexter(w) != w {
		t.Fatal("a Source was re-wrapped instead of passed through")
	}
}

// TestRunParallelContextFacade: cancellation stops the one-call parallel
// driver with ctx.Err() and the engine is torn down for the caller.
func TestRunParallelContextFacade(t *testing.T) {
	cfg := hwprof.BestMultiHash(hwprof.ShortIntervalConfig())
	ctx, cancel := context.WithCancel(context.Background())
	n, err := hwprof.RunParallelContext(ctx, hwprof.FromNexter(&countingNexter{}), cfg,
		hwprof.RunConfig{IntervalLength: cfg.IntervalLength, Shards: 2, NoPerfect: true},
		func(i int, _, _ map[hwprof.Tuple]uint64) {
			if i == 1 {
				cancel()
			}
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n < 2 {
		t.Fatalf("intervals = %d, want at least the 2 before cancellation", n)
	}
}

// TestDrainViaFacade: the exported engine salvages a partial interval and
// then reports ErrClosed on further use.
func TestDrainViaFacade(t *testing.T) {
	cfg := hwprof.BestMultiHash(hwprof.ShortIntervalConfig())
	sp, err := hwprof.NewSharded(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := hwprof.NewWorkload("gcc", hwprof.KindValue, 3)
	for i := uint64(0); i < cfg.IntervalLength/2; i++ {
		tp, _ := w.Next()
		sp.Observe(tp)
	}
	profile, err := sp.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(profile) == 0 {
		t.Fatal("Drain lost the half interval")
	}
	sp.Observe(hwprof.Tuple{A: 1})
	if !errors.Is(sp.Err(), hwprof.ErrClosed) {
		t.Fatalf("use after Drain: Err = %v, want ErrClosed", sp.Err())
	}
	if _, err := sp.Drain(); !errors.Is(err, hwprof.ErrClosed) {
		t.Fatalf("second Drain: err = %v, want ErrClosed", err)
	}
}

// TestRunWithReportsTraceFaults: the facade's headline robustness promise —
// profiling a damaged trace file ends with a matchable error, not a
// silently shortened run.
func TestRunWithReportsTraceFaults(t *testing.T) {
	cfg := hwprof.BestMultiHash(hwprof.ShortIntervalConfig())
	var buf bytes.Buffer
	w, _ := hwprof.NewWorkload("li", hwprof.KindValue, 4)
	if _, err := hwprof.WriteTrace(&buf, hwprof.KindValue, hwprof.Limit(w, 2*cfg.IntervalLength), 0); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	run := func(data []byte) error {
		r, err := hwprof.OpenTrace(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		p, err := hwprof.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		_, err = hwprof.RunWith(r, p, hwprof.RunConfig{IntervalLength: cfg.IntervalLength, NoPerfect: true}, nil)
		return err
	}

	if err := run(data); err != nil {
		t.Fatalf("intact trace: %v", err)
	}
	if err := run(data[:len(data)*3/4]); !errors.Is(err, hwprof.ErrTraceTruncated) {
		t.Fatalf("truncated trace: err = %v, want ErrTraceTruncated", err)
	}
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0x40
	if err := run(flipped); !errors.Is(err, hwprof.ErrTraceCorrupt) {
		t.Fatalf("corrupt trace: err = %v, want ErrTraceCorrupt", err)
	}
}
