package hwprof_test

import (
	"fmt"

	"hwprof"
)

// ExampleNew profiles one interval of a synthetic stream and reports how
// many candidate tuples the hardware caught.
func ExampleNew() {
	cfg := hwprof.BestMultiHash(hwprof.ShortIntervalConfig())
	profiler, err := hwprof.New(cfg)
	if err != nil {
		panic(err)
	}
	workload, err := hwprof.NewWorkload("li", hwprof.KindValue, 7)
	if err != nil {
		panic(err)
	}
	for i := uint64(0); i < cfg.IntervalLength; i++ {
		t, _ := workload.Next()
		profiler.Observe(t)
	}
	candidates := 0
	for _, n := range profiler.EndInterval() {
		if n >= cfg.ThresholdCount() {
			candidates++
		}
	}
	fmt.Println(candidates > 0, candidates <= cfg.EffectiveAccumCapacity())
	// Output: true true
}

// ExampleCombine names a three-variable profiling event as a tuple.
func ExampleCombine() {
	a := hwprof.Combine(0x400010, 3, 99)
	b := hwprof.Combine(0x400010, 3, 99)
	c := hwprof.Combine(0x400010, 99, 3)
	fmt.Println(a == b, a == c, a.A == 0x400010)
	// Output: true false true
}

// ExampleEvalInterval classifies a hardware profile against ground truth
// with the paper's error methodology.
func ExampleEvalInterval() {
	perfect := map[hwprof.Tuple]uint64{{A: 1}: 500, {A: 2}: 40}
	hardware := map[hwprof.Tuple]uint64{{A: 1}: 500}
	iv := hwprof.EvalInterval(perfect, hardware, 100)
	fmt.Printf("error %.0f%%, candidates %d\n", iv.Total*100, iv.Candidates())
	// Output: error 0%, candidates 1
}

// ExampleStorageBytes reproduces the paper's §7 storage envelope.
func ExampleStorageBytes() {
	short, _ := hwprof.StorageBytes(hwprof.BestMultiHash(hwprof.ShortIntervalConfig()))
	long, _ := hwprof.StorageBytes(hwprof.BestMultiHash(hwprof.LongIntervalConfig()))
	fmt.Println(short, long)
	// Output: 7144 16144
}
