// Benchmarks regenerating every results figure of the paper (see
// DESIGN.md's experiment index) plus ablations of the design choices the
// paper calls out. Each figure bench runs its harness at a reduced
// interval budget (the cmd/experiments tool runs the full defaults) and
// reports the headline error metrics alongside the usual time/op.
package hwprof_test

import (
	"testing"

	"hwprof"
	"hwprof/internal/expt"
)

// benchOpts is the reduced budget used by the figure benches.
func benchOpts(benchmarks ...string) expt.Options {
	return expt.Options{
		Seed:           1,
		ShortIntervals: 3,
		LongIntervals:  1,
		Benchmarks:     benchmarks,
	}
}

func BenchmarkFig04DistinctTuples(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expt.Fig4(benchOpts("gcc", "li", "m88ksim")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig05Candidates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := expt.Fig5(benchOpts("gcc", "li", "m88ksim")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig06Variation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := expt.Fig6(benchOpts("deltablue", "m88ksim")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig07SingleHash(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := expt.Fig7(benchOpts("gcc", "go")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig09Analytic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expt.Fig9(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10MultiHashSweep10K(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expt.Fig10(benchOpts("gcc", "go")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11MultiHashSweep1M(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expt.Fig11(benchOpts("gcc")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12BestMultiHash(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := expt.Fig12(benchOpts("gcc", "go")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13PerInterval(b *testing.B) {
	opts := benchOpts("gcc", "go")
	opts.LongIntervals = 2
	for i := 0; i < b.N; i++ {
		if _, _, err := expt.Fig13(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14EdgeProfiling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := expt.Fig14(benchOpts("gcc", "go")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAreaModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expt.AreaTable(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAdaptiveExtension(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expt.AdaptiveTable(benchOpts("m88ksim", "deltablue")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStratifiedBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expt.StratifiedCompare(benchOpts("gcc", "li")); err != nil {
			b.Fatal(err)
		}
	}
}

// meanError runs one configuration over a workload and returns the mean
// total error (fraction) across `intervals` intervals, skipping the
// cold-start interval like the figure harnesses do.
func meanError(b *testing.B, bench string, kind hwprof.Kind, cfg hwprof.Config, intervals int) float64 {
	b.Helper()
	w, err := hwprof.NewWorkload(bench, kind, 1)
	if err != nil {
		b.Fatal(err)
	}
	return meanErrorOn(b, w, cfg, intervals)
}

// meanErrorOn is meanError over an arbitrary source.
func meanErrorOn(b *testing.B, w hwprof.Source, cfg hwprof.Config, intervals int) float64 {
	b.Helper()
	p, err := hwprof.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	total := 0.0
	counted := 0
	n, err := hwprof.Run(hwprof.Limit(w, cfg.IntervalLength*uint64(intervals+1)), p,
		cfg.IntervalLength, func(i int, perfect, hardware map[hwprof.Tuple]uint64) {
			if i == 0 {
				return
			}
			total += hwprof.EvalInterval(perfect, hardware, cfg.ThresholdCount()).Total
			counted++
		})
	if err != nil {
		b.Fatal(err)
	}
	if n != intervals+1 || counted != intervals {
		b.Fatalf("ran %d intervals, counted %d", n, counted)
	}
	return total / float64(counted)
}

// BenchmarkAblationConservative measures conservative update on/off at the
// paper's best geometry (DESIGN.md §5).
func BenchmarkAblationConservative(b *testing.B) {
	base := hwprof.BestMultiHash(hwprof.ShortIntervalConfig())
	base.Seed = 8
	for i := 0; i < b.N; i++ {
		on := base
		off := base
		off.ConservativeUpdate = false
		eOn := meanError(b, "gcc", hwprof.KindValue, on, 4)
		eOff := meanError(b, "gcc", hwprof.KindValue, off, 4)
		b.ReportMetric(eOn*100, "%err-C1")
		b.ReportMetric(eOff*100, "%err-C0")
	}
}

// BenchmarkAblationShielding measures the shielding optimization the paper
// asserts but does not plot (§5.2), under the high-pressure long regime
// where unshielded candidate traffic floods the hash tables.
func BenchmarkAblationShielding(b *testing.B) {
	base := hwprof.BestMultiHash(hwprof.LongIntervalConfig())
	base.Seed = 8
	for i := 0; i < b.N; i++ {
		off := base
		off.NoShield = true
		eOn := meanError(b, "gcc", hwprof.KindValue, base, 1)
		eOff := meanError(b, "gcc", hwprof.KindValue, off, 1)
		b.ReportMetric(eOn*100, "%err-shield")
		b.ReportMetric(eOff*100, "%err-noshield")
	}
}

// BenchmarkAblationRetaining measures retaining (§5.4.1) at the long
// regime: without it every candidate re-warms through the hash tables each
// interval, recreating the pressure retaining exists to remove.
func BenchmarkAblationRetaining(b *testing.B) {
	base := hwprof.BestMultiHash(hwprof.LongIntervalConfig())
	base.Seed = 8
	for i := 0; i < b.N; i++ {
		off := base
		off.Retain = false
		eOn := meanError(b, "gcc", hwprof.KindValue, base, 1)
		eOff := meanError(b, "gcc", hwprof.KindValue, off, 1)
		b.ReportMetric(eOn*100, "%err-P1")
		b.ReportMetric(eOff*100, "%err-P0")
	}
}

// BenchmarkAblationCounterWidth contrasts the paper's 3-byte saturating
// counters with hardware just wide enough for the threshold: 10-bit
// counters saturate at 1023, a whisker above the long regime's threshold
// count of 1000, so aliased counters pin at promotable values. Measured
// equal error (0 vs 0) is the expected finding: with saturation (never
// wrap-around), width beyond ~log2(threshold) buys nothing, so the paper's
// 3-byte counters are a conservative choice — 10-bit counters would shrink
// the 6 KB hash storage to 2.5 KB.
func BenchmarkAblationCounterWidth(b *testing.B) {
	base := hwprof.BestMultiHash(hwprof.LongIntervalConfig())
	base.Seed = 8
	for i := 0; i < b.N; i++ {
		narrow := base
		narrow.CounterWidth = 10
		e24 := meanError(b, "gcc", hwprof.KindValue, base, 1)
		e10 := meanError(b, "gcc", hwprof.KindValue, narrow, 1)
		b.ReportMetric(e24*100, "%err-24bit")
		b.ReportMetric(e10*100, "%err-10bit")
	}
}

// BenchmarkAblationHashQuality contrasts the paper's randomize/flip/
// xorfold hash family with structure-preserving shifted xors (§5.3). The
// input is a real program's edge stream — PCs in a narrow range — which is
// exactly the structured input the randomize tables exist to disperse.
func BenchmarkAblationHashQuality(b *testing.B) {
	// Single-hash architecture: with multiple tables, conservative update
	// masks even a pathological hash (the min counter stays clean as long
	// as one table disperses), so the hash's own quality shows cleanest
	// with one table.
	base := hwprof.ShortIntervalConfig()
	base.TotalEntries = 512
	base.Retain = true
	base.Seed = 8
	for i := 0; i < b.N; i++ {
		weak := base
		weak.WeakHash = true
		ePaper := meanErrorOn(b, hwprof.NewSliceSource(stridedTuples(base, 5)), base, 4)
		eWeak := meanErrorOn(b, hwprof.NewSliceSource(stridedTuples(weak, 5)), weak, 4)
		b.ReportMetric(ePaper*100, "%err-paperhash")
		b.ReportMetric(eWeak*100, "%err-weakhash")
	}
}

// stridedTuples builds a stream whose hot tuples are 8 nearby PCs and whose
// noise tuples are large-stride addresses — the structured inputs that
// collapse onto a handful of buckets under a shifted-xor hash but disperse
// under the paper's randomize tables.
func stridedTuples(cfg hwprof.Config, intervals int) []hwprof.Tuple {
	out := make([]hwprof.Tuple, cfg.IntervalLength*uint64(intervals))
	for i := range out {
		n := uint64(i + 1)
		if n%3 != 0 {
			out[i] = hwprof.Tuple{A: 0x400000 + (n%8)*4, B: n % 8}
			continue
		}
		k := n / 3
		out[i] = hwprof.Tuple{A: 0x800000 + (k<<15)*4, B: 0}
	}
	return out
}

// BenchmarkObserveThroughput measures the simulator's hot path: one event
// through the 4-table conservative-update architecture.
func BenchmarkObserveThroughput(b *testing.B) {
	cfg := hwprof.BestMultiHash(hwprof.ShortIntervalConfig())
	p, err := hwprof.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	w, _ := hwprof.NewWorkload("gcc", hwprof.KindValue, 1)
	tuples := make([]hwprof.Tuple, 1<<16)
	for i := range tuples {
		tuples[i], _ = w.Next()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Observe(tuples[i&(1<<16-1)])
	}
}

func BenchmarkVMValidation(b *testing.B) {
	opts := benchOpts()
	opts.ShortIntervals = 2
	for i := 0; i < b.N; i++ {
		if _, err := expt.VMTable(opts); err != nil {
			b.Fatal(err)
		}
	}
}
