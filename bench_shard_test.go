// Benchmarks of the batched streaming API and the sharded concurrent
// engine against the per-event sequential baseline, in events/sec. The
// interesting comparison is events/s at 1, 2, 4 and 8 shards vs. the
// sequential numbers on a multi-core runner; on a single-core machine the
// sharded engine can only show its routing overhead.
//
// Every variant does the same work per iteration: observe one event of a
// pre-generated gcc-analog slab, crossing an interval boundary every
// IntervalLength events.
package hwprof_test

import (
	"fmt"
	"testing"

	"hwprof"
)

// benchSlab returns cap tuples of the gcc analog (the suite's most
// tuple-diverse stream), generated once and shared by all benchmarks.
var benchSlab = func() func(b *testing.B) []hwprof.Tuple {
	var slab []hwprof.Tuple
	return func(b *testing.B) []hwprof.Tuple {
		b.Helper()
		if slab == nil {
			w, err := hwprof.NewWorkload("gcc", hwprof.KindValue, 1)
			if err != nil {
				b.Fatal(err)
			}
			slab = make([]hwprof.Tuple, 1<<19)
			for i := range slab {
				slab[i], _ = w.Next()
			}
		}
		return slab
	}
}()

func benchShardConfig() hwprof.Config {
	cfg := hwprof.BestMultiHash(hwprof.ShortIntervalConfig())
	cfg.Seed = 1
	return cfg
}

func reportEventsPerSec(b *testing.B) {
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkEngineSequential is the pre-redesign baseline: one virtual
// Observe call per event through a single MultiHash.
func BenchmarkEngineSequential(b *testing.B) {
	cfg := benchShardConfig()
	p, err := hwprof.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	slab := benchSlab(b)
	mask := len(slab) - 1
	b.ReportAllocs()
	b.ResetTimer()
	n := uint64(0)
	for i := 0; i < b.N; i++ {
		p.Observe(slab[i&mask])
		if n++; n == cfg.IntervalLength {
			p.EndInterval()
			n = 0
		}
	}
	reportEventsPerSec(b)
}

// BenchmarkEngineBatched is the batched streaming fast path on the same
// single MultiHash: ObserveBatch in DefaultBatchSize chunks.
func BenchmarkEngineBatched(b *testing.B) {
	cfg := benchShardConfig()
	p, err := hwprof.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	slab := benchSlab(b)
	b.ReportAllocs()
	b.ResetTimer()
	observeAll(b, p, slab, cfg.IntervalLength)
	reportEventsPerSec(b)
}

// BenchmarkEngineSharded measures the concurrent engine at 1, 2, 4 and 8
// shards. The acceptance bar for the redesign is >= 2x the sequential
// events/s at 4 shards on a multi-core runner.
func BenchmarkEngineSharded(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cfg := benchShardConfig()
			sp, err := hwprof.NewSharded(cfg, shards)
			if err != nil {
				b.Fatal(err)
			}
			defer sp.Close()
			slab := benchSlab(b)
			b.ReportAllocs()
			b.ResetTimer()
			observeAll(b, sp, slab, cfg.IntervalLength)
			reportEventsPerSec(b)
		})
	}
}

// observeAll streams b.N events of slab into p in DefaultBatchSize chunks,
// ending an interval every intervalLength events. p's ObserveBatch fast
// path is used when it has one.
func observeAll(b *testing.B, p hwprof.StreamProfiler, slab []hwprof.Tuple, intervalLength uint64) {
	type batcher interface{ ObserveBatch([]hwprof.Tuple) }
	bp, batched := p.(batcher)
	const chunk = 512
	pos, n := 0, uint64(0)
	for done := 0; done < b.N; {
		want := b.N - done
		if want > chunk {
			want = chunk
		}
		if rem := int(intervalLength - n); want > rem {
			want = rem
		}
		if pos+want > len(slab) {
			pos = 0
		}
		batch := slab[pos : pos+want]
		if batched {
			bp.ObserveBatch(batch)
		} else {
			for _, tp := range batch {
				p.Observe(tp)
			}
		}
		pos += want
		done += want
		if n += uint64(want); n == intervalLength {
			p.EndInterval()
			n = 0
		}
	}
}
