// Hot-path perf-trajectory benchmarks: the same fixed-seed cases that
// cmd/benchrun measures into BENCH_*.json, exposed to `go test -bench` so
// CI can smoke them and developers can run individual cases with -bench
// filters (e.g. -bench 'HotPath/observe-batch/multi$').
package hwprof_test

import (
	"testing"

	"hwprof/internal/benchsuite"
)

func BenchmarkHotPath(b *testing.B) {
	for _, c := range benchsuite.Suite() {
		b.Run(c.Name, c.F)
	}
}
