package hwprof

import (
	"net"
	"time"

	"hwprof/internal/client"
)

// Option configures the context-first entry points Profile, Connect and
// Subscribe. One vocabulary covers all three: stream-shaping options
// (interval length, shards, batch size) apply wherever they make sense,
// link options (timeouts, backoff, reconnect) apply to the remote entry
// points, and options irrelevant to a call are simply ignored by it.
type Option func(*options)

// options is the merged knob set the unified entry points run on.
type options struct {
	run        RunConfig
	cfg        *Config
	eng        StreamProfiler
	onInterval IntervalFunc

	remote       client.Options
	reconnectSet bool // an option stated reconnect explicitly
	start        uint64

	// legacy marks options built by a deprecated wrapper: the knobs are
	// passed through verbatim, with none of the new-surface defaulting,
	// so the old entry points keep their exact semantics.
	legacy bool
}

func buildOptions(opts []Option) options {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// WithConfig selects the profiler configuration. Profile and Connect
// default to BestMultiHash(ShortIntervalConfig()) without it.
func WithConfig(cfg Config) Option {
	return func(o *options) { o.cfg = &cfg }
}

// WithIntervalLength sets the events-per-interval of the run, overriding
// the configuration's own interval length. On Subscribe it is the epoch
// length validated against the publisher's on attach.
func WithIntervalLength(n uint64) Option {
	return func(o *options) { o.run.IntervalLength = n }
}

// WithShards sets the shard count: locally the engine Profile builds,
// remotely the engine the daemon builds for the session.
func WithShards(n int) Option {
	return func(o *options) { o.run.Shards = n; o.remote.Shards = n }
}

// WithBatchSize sets the batch size of the source→engine hot loop, or of
// the event frames a remote session sends.
func WithBatchSize(n int) Option {
	return func(o *options) { o.run.BatchSize = n; o.remote.BatchSize = n }
}

// WithoutOracle disables the perfect (oracle) profiler on local runs; the
// interval callback then receives a nil perfect map.
func WithoutOracle() Option {
	return func(o *options) { o.run.NoPerfect = true }
}

// WithProfileReuse recycles interval-profile maps back into the engine
// after each callback; the callback must finish with the maps before
// returning.
func WithProfileReuse() Option {
	return func(o *options) { o.run.ReuseProfiles = true }
}

// OnInterval sets the per-interval callback of a local run.
func OnInterval(fn IntervalFunc) Option {
	return func(o *options) { o.onInterval = fn }
}

// WithEngine runs Profile on the given engine — any StreamProfiler —
// instead of building one from the configuration. The caller keeps
// ownership: the engine is left open for Drain or further use.
func WithEngine(hw StreamProfiler) Option {
	return func(o *options) { o.eng = hw }
}

// WithReconnect enables automatic reconnect/resume on remote links
// (Connect's default, stated explicitly).
func WithReconnect() Option {
	return func(o *options) { o.remote.Reconnect = true; o.reconnectSet = true }
}

// WithoutReconnect disables automatic reconnect: a broken link surfaces as
// an error instead of being redialed.
func WithoutReconnect() Option {
	return func(o *options) { o.remote.Reconnect = false; o.reconnectSet = true }
}

// WithBackoff tunes the reconnect backoff: the first delay and its cap.
func WithBackoff(base, max time.Duration) Option {
	return func(o *options) { o.remote.BackoffBase = base; o.remote.BackoffMax = max }
}

// WithMaxAttempts bounds consecutive failed reconnect attempts per outage;
// negative means unlimited.
func WithMaxAttempts(n int) Option {
	return func(o *options) { o.remote.MaxAttempts = n }
}

// WithDialTimeout bounds each TCP connect of a remote link.
func WithDialTimeout(d time.Duration) Option {
	return func(o *options) { o.remote.DialTimeout = d }
}

// WithReadTimeout bounds each read on a remote link.
func WithReadTimeout(d time.Duration) Option {
	return func(o *options) { o.remote.ReadTimeout = d }
}

// WithWriteTimeout bounds each write on a remote link.
func WithWriteTimeout(d time.Duration) Option {
	return func(o *options) { o.remote.WriteTimeout = d }
}

// WithDialer overrides how remote links dial (tests, fault injection).
func WithDialer(dial func(addr string, timeout time.Duration) (net.Conn, error)) Option {
	return func(o *options) { o.remote.Dialer = dial }
}

// WithMarks opens a remote session in marked mode: the client places every
// interval boundary itself with Session.Mark, instead of the daemon
// counting IntervalLength events. This is how a coordinator that owns a
// fleet-wide union stream keeps per-machine epoch boundaries aligned with
// the union's interval boundaries.
func WithMarks() Option {
	return func(o *options) { o.remote.Marked = true }
}

// WithStartEpoch sets the first epoch a Subscribe call needs; epochs below
// it are never delivered.
func WithStartEpoch(e uint64) Option {
	return func(o *options) { o.start = e }
}

// withRunConfig passes a legacy RunConfig through verbatim (deprecated
// wrappers only).
func withRunConfig(rc RunConfig) Option {
	return func(o *options) {
		o.run = rc
		o.remote.Shards = rc.Shards
		o.remote.BatchSize = rc.BatchSize
		o.legacy = true
	}
}

// withClientOptions passes legacy RemoteOptions through verbatim
// (deprecated wrappers only).
func withClientOptions(co client.Options) Option {
	return func(o *options) {
		o.remote = co
		o.reconnectSet = true
		o.legacy = true
	}
}
