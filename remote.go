package hwprof

import (
	"hwprof/internal/client"
)

// RemoteSession is an open profiling session with a profiled daemon: the
// remote counterpart of a ShardedProfiler. Stream events with Observe /
// ObserveBatch / Flush, consume interval profiles from Profiles (or drive
// everything with Run), and finish with Drain (keeps the partial interval)
// or Close (discards it). See cmd/profiled for the daemon and cmd/profctl
// for the CLI client.
type RemoteSession = client.Session

// RemoteProfile is one interval profile delivered by a daemon, including
// the cumulative shed count under the daemon's shed backpressure policy.
type RemoteProfile = client.Profile

// RemoteOptions tunes a remote session: shard count, batch size, dial
// timeout, reconnect/backoff policy, wire deadlines.
type RemoteOptions = client.Options

// ErrRemoteClosed is returned by operations on a remote session that was
// already drained or closed.
var ErrRemoteClosed = client.ErrSessionClosed

// Dial connects to a profiled daemon at addr (host:port), opens a session
// running cfg on an engine of rc.Shards shards, and returns it. Events then
// stream over the wire in batches of rc.BatchSize, and the daemon returns
// one profile per completed cfg.IntervalLength events.
//
// On a block-policy daemon the returned profiles are bit-identical to a
// local RunParallel over the same stream, configuration and seed — the
// daemon places interval boundaries exactly where the local batched driver
// does. On a shed-policy daemon profiles are lossy under overload; each
// RemoteProfile carries the cumulative shed count.
//
// Dial enables automatic reconnect: when the daemon retains disconnected
// sessions, a broken connection is redialed under jittered exponential
// backoff and the session resumed where the stream broke, with the
// delivered profiles staying bit-identical to an uninterrupted run. Use
// DialWith to tune or disable that behavior.
func Dial(addr string, cfg Config, rc RunConfig) (*RemoteSession, error) {
	return client.Dial(addr, cfg, client.Options{
		Shards:    rc.Shards,
		BatchSize: rc.BatchSize,
		Reconnect: true,
	})
}

// DialWith opens a remote session with full control over the session
// options: reconnect and backoff policy, wire deadlines, batch size, dial
// hook. Dial is the common case; DialWith is for load generators, tests,
// and deployments that need the knobs.
func DialWith(addr string, cfg Config, opts RemoteOptions) (*RemoteSession, error) {
	return client.Dial(addr, cfg, opts)
}
