package hwprof

import (
	"context"
	"net"
	"time"

	"hwprof/internal/client"
)

// RemoteSession is an open profiling session with a profiled daemon: the
// remote counterpart of a ShardedProfiler. Stream events with Observe /
// ObserveBatch / Flush, consume interval profiles from Profiles (or drive
// everything with Run), and finish with Drain (keeps the partial interval)
// or Close (discards it). On a session opened with WithMarks, place each
// interval boundary with Mark. See cmd/profiled for the daemon and
// cmd/profctl for the CLI client.
type RemoteSession = client.Session

// RemoteProfile is one interval profile delivered by a daemon, including
// the cumulative shed count under the daemon's shed backpressure policy.
type RemoteProfile = client.Profile

// RemoteOptions tunes a remote session: shard count, batch size, dial
// timeout, reconnect/backoff policy, wire deadlines.
//
// Deprecated: new code states these knobs as Connect options (WithShards,
// WithBatchSize, WithBackoff, WithoutReconnect, ...); RemoteOptions remains
// for DialWith.
type RemoteOptions = client.Options

// RemoteNotice is one elastic-serving announcement from a daemon — a live
// resize, a degradation-ladder move, or an imminent park — as surfaced by
// RemoteSession.Notices and RemoteSession.NoticeTrail. It is an absolute
// snapshot of the session's geometry from interval Index+1 on; the session
// applies it to its own stream arithmetic before surfacing it, so callers
// may ignore notices entirely.
type RemoteNotice = client.Notice

// Notice kinds carried by RemoteNotice.Kind.
const (
	NoticeResize  = client.NoticeResize
	NoticeDegrade = client.NoticeDegrade
	NoticePark    = client.NoticePark
)

// ErrRemoteClosed is returned by operations on a remote session that was
// already drained or closed.
var ErrRemoteClosed = client.ErrSessionClosed

// Connect is the unified remote entry point: it opens a profiling session
// with the profiled daemon at addr (host:port), running the configuration
// given WithConfig — BestMultiHash over the paper's short-interval regime
// by default — on an engine of WithShards shards. Events then stream over
// the wire in batches, and the daemon returns one profile per completed
// interval.
//
// On a block-policy daemon the returned profiles are bit-identical to a
// local Profile run over the same stream, configuration and seed — the
// daemon places interval boundaries exactly where the local batched driver
// does. On a shed-policy daemon profiles are lossy under overload; each
// RemoteProfile carries the cumulative shed count.
//
// Reconnect is on by default: when the daemon retains disconnected
// sessions, a broken connection is redialed under jittered exponential
// backoff and the session resumed where the stream broke, with the
// delivered profiles staying bit-identical to an uninterrupted run. Tune
// it with WithBackoff / WithMaxAttempts or disable it with
// WithoutReconnect. ctx governs connection establishment, including the
// dials of later reconnects; cancel it to stop redialing.
func Connect(ctx context.Context, addr string, opts ...Option) (*RemoteSession, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o := buildOptions(opts)
	cfg := BestMultiHash(ShortIntervalConfig())
	if o.cfg != nil {
		cfg = *o.cfg
	}
	co := o.remote
	if !o.reconnectSet {
		co.Reconnect = true
	}
	if co.Dialer == nil {
		co.Dialer = func(addr string, timeout time.Duration) (net.Conn, error) {
			d := net.Dialer{Timeout: timeout}
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	return client.Dial(addr, cfg, co)
}

// Dial connects to a profiled daemon and opens a session running cfg on an
// engine of rc.Shards shards, with automatic reconnect enabled.
//
// Deprecated: use Connect — Dial is a thin wrapper over it and keeps its
// exact semantics:
//
//	Connect(ctx, addr, WithConfig(cfg), WithShards(n), WithBatchSize(b))
func Dial(addr string, cfg Config, rc RunConfig) (*RemoteSession, error) {
	return Connect(context.Background(), addr,
		WithConfig(cfg), withRunConfig(rc), WithReconnect())
}

// DialWith opens a remote session with full control over the session
// options.
//
// Deprecated: use Connect — every RemoteOptions knob has a Connect option
// (note Connect defaults reconnect ON where RemoteOptions defaults it
// off). DialWith is a thin wrapper and keeps its exact semantics.
func DialWith(addr string, cfg Config, opts RemoteOptions) (*RemoteSession, error) {
	return Connect(context.Background(), addr,
		WithConfig(cfg), withClientOptions(opts))
}
